#ifndef SPIKESIM_BENCH_COMMON_HH
#define SPIKESIM_BENCH_COMMON_HH

#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/pipeline.hh"
#include "metrics/sequence.hh"
#include "obs/manifest.hh"
#include "obs/perf.hh"
#include "obs/slo.hh"
#include "obs/timeline.hh"
#include "obs/tracing.hh"
#include "sim/engine.hh"
#include "sim/replay.hh"
#include "sim/system.hh"
#include "support/table.hh"
#include "support/threadpool.hh"
#include "trace/trace.hh"

/**
 * @file
 * Shared harness for the figure-reproduction benchmarks: runs the OLTP
 * workload once (profile run + measured trace run, mirroring the
 * paper's Pixie profiling followed by SimOS trace collection) and hands
 * each bench the pieces it needs. Workload size is overridable from the
 * command line: `<bench> [--corpus DIR] [profile_txns] [trace_txns]`.
 *
 * When a corpus directory is given (the `--corpus` flag or the
 * SPIKESIM_CORPUS_DIR environment variable), runWorkload() consults the
 * persistent trace/profile cache (sim/corpus.hh): a fingerprint hit
 * skips database load, warmup, profiling, and tracing entirely and the
 * bench starts at replay speed; a miss generates the workload and saves
 * it for every subsequent bench of the sweep. Setting
 * SPIKESIM_CORPUS_VERIFY=1 additionally regenerates the workload from
 * scratch and fatal()s unless the loaded artifacts are bit-identical.
 *
 * Replay threading is shared across every bench the same way: the
 * `--threads N` flag (or the SPIKESIM_THREADS environment variable)
 * sizes one support::ThreadPool owned by the Workload, used by both the
 * sweep executor (sim/sweep.hh) and the parallel replay engine
 * (sim/engine.hh, via BenchReplay below). `--threads 0` disables the
 * pool entirely and BenchReplay falls back to the scalar per-config
 * Replayer walks — the differential oracle path, so `--threads 0`
 * versus `--threads N` is a byte-identical A/B of every table. The
 * default is the hardware concurrency.
 *
 * SIMD kernel selection is shared the same way: `--simd 0|1|2` (or the
 * SPIKESIM_SIMD environment variable, the flag wins) forces the SoA
 * replay kernels scalar, AVX2, or AVX-512; unset means runtime
 * auto-calibration (sim/kernels.hh resolveKernel, which times each
 * runnable kernel on a synthetic trace and picks the fastest). The
 * engine path of BenchReplay replays through the structure-of-arrays
 * trace either way, and every setting is byte-identical to every
 * other — `--simd` only moves time. The chosen kernel and the reason
 * it was chosen land in the run manifest (simd_kernel,
 * simd_kernel_reason).
 *
 * When any observability switch is active, ObsRun also opens hardware
 * perf counters (obs/perf.hh) over the whole run and folds cycles,
 * instructions, IPC, branch-miss %, L1I/L1D/iTLB MPKI and the
 * front-end-bound estimate into the registry (perf.* gauges) and the
 * run manifest. Hosts where perf_event_open is forbidden record
 * perf.available = 0 and run on unaffected.
 */

namespace spikesim::bench {

/**
 * Resolved observability switches. All default off, so a run without
 * them is byte-identical to a build without the obs layer: no trace
 * collection, no heartbeat, no manifest, nothing extra on stdout.
 */
struct ObsOptions
{
    std::string trace_out;    ///< Chrome trace JSON path ("" = off)
    std::string manifest_out; ///< run manifest JSON path ("" = off)
    /// Flight recorder counter-trace JSON path ("" = off). A separate
    /// document from trace_out: span timestamps are wall time, the
    /// timeline's are the workload's own (e.g. virtual simulated)
    /// axis, and the two must not share a time axis.
    std::string timeline_out;
    double progress_s = 0.0;  ///< heartbeat period in seconds (0 = off)

    bool
    active() const
    {
        return !trace_out.empty() || !manifest_out.empty() ||
               !timeline_out.empty() || progress_s > 0.0;
    }
};

/**
 * Observability switches from the environment: SPIKESIM_TRACE_OUT,
 * SPIKESIM_MANIFEST_OUT, SPIKESIM_TIMELINE_OUT, SPIKESIM_PROGRESS
 * (seconds). The only route into the google-benchmark binaries, whose
 * argv belongs to the benchmark library; runWorkload() additionally
 * accepts `--trace-out`, `--manifest-out`, `--timeline-out`, and
 * `--progress` flags, which win over the environment.
 */
ObsOptions obsOptionsFromEnv();

/**
 * RAII driver for one observed run: starts trace collection and the
 * progress heartbeat on construction, and on finish() (or destruction)
 * stops the heartbeat, flushes the Chrome trace, and writes the run
 * manifest with a final registry snapshot. All obs status lines go to
 * stderr — stdout stays byte-identical with the switches off.
 * runWorkload() hangs one off the Workload; google-benchmark mains
 * construct their own from obsOptionsFromEnv().
 */
class ObsRun
{
  public:
    ObsRun(ObsOptions opts, int argc, char** argv);
    ~ObsRun();

    ObsRun(const ObsRun&) = delete;
    ObsRun& operator=(const ObsRun&) = delete;

    obs::Manifest& manifest() { return manifest_; }
    const ObsOptions& options() const { return opts_; }

    /** Embed a produced artifact (verbatim JSON) in the manifest. */
    void addArtifact(std::string name, std::string json);

    /**
     * Read a just-written BENCH_*.json file and embed it in the
     * manifest under its basename. Missing/unreadable files warn on
     * stderr rather than failing the bench.
     */
    void addArtifactFile(const std::string& path);

    /**
     * Record one flight recorder timeline: its windows section goes
     * into the manifest's "timeline" array, and (when `--timeline-out`
     * is set) its series become counter events in the timeline trace
     * written by finish().
     */
    void addTimeline(const obs::Timeline& tl);

    /** Record one SLO verdict in the manifest's "slo" array. */
    void addSloVerdict(const obs::SloSpec& spec,
                       const obs::SloVerdict& v);

    /** Stop the heartbeat, flush trace + timeline + manifest. */
    void finish();

    /** The run's hardware counters (never null; may be inert). */
    obs::PerfCounters& perf() { return *perf_; }

  private:
    ObsOptions opts_;
    obs::Manifest manifest_;
    std::vector<obs::Timeline> timelines_;
    std::unique_ptr<obs::PerfCounters> perf_;
    std::unique_ptr<obs::ProgressMeter> progress_;
    bool finished_ = false;
};

/** Everything a figure bench needs. */
struct Workload
{
    /** Observed-run driver, or null when no obs switch is set. First
     *  member on purpose: destroyed last, after the worker pool has
     *  drained, so the trace flush sees every span. */
    std::unique_ptr<ObsRun> obs_run;
    std::unique_ptr<sim::System> system;
    std::optional<sim::System::Profiles> profiles;
    trace::TraceBuffer buf;
    std::uint64_t profile_txns = 0;
    std::uint64_t trace_txns = 0;
    bool db_ready = false; ///< system->setup() has run
    int threads = 0;       ///< resolved --threads / SPIKESIM_THREADS
    /** Resolved `--seed` / SPIKESIM_SEED (kDefaultSeed when unset);
     *  the one RNG seed every randomized bench derives from. */
    std::uint64_t seed = 1;
    /** Resolved `--simd` flag: Scalar/Simd/Avx512 when given, else
     *  Auto (SPIKESIM_SIMD, then calibration — sim/kernels.hh). */
    sim::SimdMode simd = sim::SimdMode::Auto;
    /** Shared worker pool, or null when threads == 0 (serial oracle
     *  path). Sized once by runWorkload so sweep and replay share it. */
    std::unique_ptr<support::ThreadPool> worker_pool;

    support::ThreadPool* pool() const { return worker_pool.get(); }
    ObsRun* obs() const { return obs_run.get(); }

    /**
     * Register a BENCH_*.json file this bench just wrote with the run
     * manifest (no-op when no `--manifest-out`/ObsRun is active).
     */
    void
    recordArtifact(const std::string& path) const
    {
        if (obs_run)
            obs_run->addArtifactFile(path);
    }

    /**
     * Load the database if it is not loaded yet. A corpus hit skips
     * database setup (replaying the trace never touches it); benches
     * that run additional transactions call this first. Note the
     * database then starts fresh rather than in its post-trace state —
     * same as a fresh run's warmup-start.
     */
    void
    ensureDb()
    {
        if (db_ready)
            return;
        system->setup();
        db_ready = true;
    }

    const program::Program& appProg() const { return system->appProg(); }
    const program::Program&
    kernelProg() const
    {
        return system->kernelProg();
    }
    const profile::Profile& appProfile() const { return profiles->app; }
    const profile::Profile&
    kernelProfile() const
    {
        return profiles->kernel;
    }

    /** Build an application layout for the given combination. */
    core::Layout
    appLayout(core::OptCombo combo) const
    {
        core::PipelineOptions opts;
        opts.combo = combo;
        opts.text_base = system->config().app_text_base;
        return core::buildLayout(appProg(), profiles->app, opts);
    }

    /** Kernel baseline layout (the unoptimized kernel binary). */
    core::Layout
    kernelLayout() const
    {
        return core::baselineLayout(kernelProg(),
                                    system->config().kernel_text_base);
    }

    /** Kernel layout optimized with the full pipeline. */
    core::Layout
    kernelOptimizedLayout() const
    {
        core::PipelineOptions opts;
        opts.combo = core::OptCombo::All;
        opts.text_base = system->config().kernel_text_base;
        return core::buildLayout(kernelProg(), profiles->kernel, opts);
    }
};

/**
 * Replay dispatcher for the figure benches: one trace + layout pair,
 * replayed either by the scalar per-config Replayer walks (no pool —
 * the differential oracle path) or by the parallel replay engine over
 * a per-CPU-partitioned structure-of-arrays trace (sim/soa.hh) cached
 * per (filter, data) key. Both paths produce bit-identical results
 * (sim/engine.hh), so every bench table is byte-identical across
 * `--threads` and `--simd` settings; the engine path resolves the
 * trace straight into its SoA columns once per key
 * (Replayer::resolveSoA — no transpose) and fuses all configurations
 * of a column into one walk through the SoA replay kernels.
 */
class BenchReplay
{
  public:
    /** Uses the workload's shared pool and SIMD mode (null pool =
     *  oracle path). */
    BenchReplay(const Workload& w, const core::Layout& app,
                const core::Layout* kernel = nullptr)
        : BenchReplay(w.buf, app, kernel, w.pool(), w.simd)
    {
    }

    /** For benches that build their own trace/pool (ablations). */
    BenchReplay(const trace::TraceBuffer& buf, const core::Layout& app,
                const core::Layout* kernel, support::ThreadPool* pool,
                sim::SimdMode simd = sim::SimdMode::Auto)
        : rep_(buf, app, kernel), pool_(pool),
          parallel_(pool != nullptr), simd_(simd)
    {
    }

    /** The replayer stores references; temporaries would dangle. */
    BenchReplay(const Workload&, core::Layout&&,
                const core::Layout* = nullptr) = delete;

    const sim::Replayer& replayer() const { return rep_; }

    sim::ICacheReplayResult icache(const mem::CacheConfig& config,
                                   sim::StreamFilter filter);
    /** One fused walk pricing a whole column of configurations. */
    std::vector<sim::ICacheReplayResult>
    icacheColumn(std::span<const mem::CacheConfig> configs,
                 sim::StreamFilter filter);

    mem::ThreeCStats threeCs(const mem::CacheConfig& config,
                             sim::StreamFilter filter);
    std::vector<mem::ThreeCStats>
    threeCsColumn(std::span<const mem::CacheConfig> configs,
                  sim::StreamFilter filter);

    mem::StreamBufferStats streamBuffer(const mem::CacheConfig& config,
                                        int num_buffers,
                                        sim::StreamFilter filter);

    sim::WordStats instrumented(const mem::CacheConfig& config,
                                sim::StreamFilter filter,
                                bool flush_at_end = false);

    sim::ITlbReplayResult itlb(const sim::ITlbSpec& spec,
                               sim::StreamFilter filter);
    /** One fused walk pricing a column of iTLB geometries — the shared
     *  path for every bench reporting standalone-iTLB columns (fig14,
     *  placement/layout-search ablations). */
    std::vector<sim::ITlbReplayResult>
    itlbColumn(std::span<const sim::ITlbSpec> specs,
               sim::StreamFilter filter);

    sim::HierarchyReplayResult
    hierarchy(const mem::HierarchyConfig& config, bool include_data = true,
              bool model_coherence = false);
    std::vector<sim::HierarchyReplayResult>
    hierarchyColumn(std::span<const mem::HierarchyConfig> configs,
                    bool include_data = true,
                    bool model_coherence = false);

    /** Figure 8 run lengths for one image's stream (AppOnly or
     *  KernelOnly; the scalar oracle has no combined mode). */
    metrics::SequenceStats sequence(sim::StreamFilter filter);

    std::uint64_t dynamicInstrs(sim::StreamFilter filter);

  private:
    const sim::ResolvedTraceSoA& resolved(sim::StreamFilter filter,
                                          bool include_data);

    sim::Replayer rep_;
    support::ThreadPool* pool_;
    bool parallel_;
    sim::SimdMode simd_ = sim::SimdMode::Auto;
    std::map<std::pair<int, bool>, sim::ResolvedTraceSoA> resolved_;
};

/**
 * Run the standard workload: build the system, load the database, warm
 * up, profile `profile_txns`, then record a `trace_txns` trace — or
 * load all of it from a corpus cache hit (see the file comment).
 * Malformed command-line arguments (negative, non-numeric, or
 * out-of-range transaction counts, unknown flags, missing or empty
 * flag values) are rejected with fatal() instead of being silently
 * misparsed.
 *
 * Observability flags (all optional, stdout-neutral): `--trace-out
 * FILE` collects a Chrome trace-event JSON of the whole run,
 * `--manifest-out FILE` writes the run manifest, `--timeline-out FILE`
 * writes the flight recorder counter trace (benches that build
 * timelines), `--progress SECS` prints a counter heartbeat to stderr
 * every SECS seconds. Environment fallbacks: SPIKESIM_TRACE_OUT,
 * SPIKESIM_MANIFEST_OUT, SPIKESIM_TIMELINE_OUT, SPIKESIM_PROGRESS.
 *
 * `--simd 0|1|2` forces the SoA replay kernels scalar, AVX2, or
 * AVX-512 (strictly one of those digits; wins over SPIKESIM_SIMD).
 * Forcing a kernel on a host that cannot run it is a fatal error,
 * never a silent fallback.
 */
Workload runWorkload(int argc, char** argv,
                     std::uint64_t profile_txns = 800,
                     std::uint64_t trace_txns = 500);

/**
 * Thread count from SPIKESIM_THREADS, or the hardware concurrency when
 * unset. For benches with their own argument parsing; runWorkload
 * additionally accepts `--threads N` (the flag wins over the
 * environment). 0 means serial oracle path.
 */
int threadsFromEnv();

/** The seed every randomized bench uses when nothing overrides it. */
inline constexpr std::uint64_t kDefaultSeed = 1;

/**
 * RNG seed from SPIKESIM_SEED, or `fallback` when unset. The shared
 * convention for every randomized bench: figure-style benches get the
 * resolved value in Workload::seed (runWorkload additionally accepts
 * `--seed N`, which wins over the environment); google-benchmark
 * binaries, which own their argv, call this directly. Distinct
 * randomized sites within one binary derive their streams via
 * support::Pcg32's (seed, sequence) pairs rather than ad-hoc per-site
 * seed constants.
 */
std::uint64_t seedFromEnv(std::uint64_t fallback = kDefaultSeed);

/** Print the bench banner. */
void banner(const std::string& figure, const std::string& what);

/** Print a PAPER vs MEASURED comparison line. */
void paperVsMeasured(const std::string& metric, const std::string& paper,
                     const std::string& measured);

} // namespace spikesim::bench

#endif // SPIKESIM_BENCH_COMMON_HH
