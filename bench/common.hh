#ifndef SPIKESIM_BENCH_COMMON_HH
#define SPIKESIM_BENCH_COMMON_HH

#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "core/pipeline.hh"
#include "sim/replay.hh"
#include "sim/system.hh"
#include "support/table.hh"
#include "trace/trace.hh"

/**
 * @file
 * Shared harness for the figure-reproduction benchmarks: runs the OLTP
 * workload once (profile run + measured trace run, mirroring the
 * paper's Pixie profiling followed by SimOS trace collection) and hands
 * each bench the pieces it needs. Workload size is overridable from the
 * command line: `<bench> [profile_txns] [trace_txns]`.
 */

namespace spikesim::bench {

/** Everything a figure bench needs. */
struct Workload
{
    std::unique_ptr<sim::System> system;
    std::optional<sim::System::Profiles> profiles;
    trace::TraceBuffer buf;
    std::uint64_t profile_txns = 0;
    std::uint64_t trace_txns = 0;

    const program::Program& appProg() const { return system->appProg(); }
    const program::Program&
    kernelProg() const
    {
        return system->kernelProg();
    }
    const profile::Profile& appProfile() const { return profiles->app; }
    const profile::Profile&
    kernelProfile() const
    {
        return profiles->kernel;
    }

    /** Build an application layout for the given combination. */
    core::Layout
    appLayout(core::OptCombo combo) const
    {
        core::PipelineOptions opts;
        opts.combo = combo;
        opts.text_base = system->config().app_text_base;
        return core::buildLayout(appProg(), profiles->app, opts);
    }

    /** Kernel baseline layout (the unoptimized kernel binary). */
    core::Layout
    kernelLayout() const
    {
        return core::baselineLayout(kernelProg(),
                                    system->config().kernel_text_base);
    }

    /** Kernel layout optimized with the full pipeline. */
    core::Layout
    kernelOptimizedLayout() const
    {
        core::PipelineOptions opts;
        opts.combo = core::OptCombo::All;
        opts.text_base = system->config().kernel_text_base;
        return core::buildLayout(kernelProg(), profiles->kernel, opts);
    }
};

/**
 * Run the standard workload: build the system, load the database, warm
 * up, profile `profile_txns`, then record a `trace_txns` trace.
 */
Workload runWorkload(int argc, char** argv,
                     std::uint64_t profile_txns = 800,
                     std::uint64_t trace_txns = 500);

/** Print the bench banner. */
void banner(const std::string& figure, const std::string& what);

/** Print a PAPER vs MEASURED comparison line. */
void paperVsMeasured(const std::string& metric, const std::string& paper,
                     const std::string& measured);

} // namespace spikesim::bench

#endif // SPIKESIM_BENCH_COMMON_HH
