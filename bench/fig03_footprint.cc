/**
 * @file
 * Figure 3: execution profile of the unoptimized application binary --
 * fraction of all dynamic instructions captured by a given static
 * footprint, hottest instructions first.
 */

#include "bench/common.hh"
#include "metrics/footprint.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 3",
                  "execution profile (footprint CDF) of the baseline "
                  "binary");
    bench::Workload w = bench::runWorkload(argc, argv);
    metrics::FootprintCdf cdf(w.appProfile());

    support::TablePrinter table({"code size", "% of executed instrs"});
    for (std::uint64_t kb : {5, 10, 25, 50, 75, 100, 150, 200, 250, 300,
                             400}) {
        double cov = cdf.coverageAtBytes(kb * 1024);
        table.addRow({std::to_string(kb) + "KB",
                      support::percent(cov)});
        if (cov >= 1.0)
            break;
    }
    table.print(std::cout);

    std::cout << "\ntotal executed footprint: "
              << support::bytesHuman(cdf.totalBytes()) << "\n";
    std::cout << "footprint for 60% of execution: "
              << support::bytesHuman(cdf.bytesForCoverage(0.60)) << "\n";
    std::cout << "footprint for 99% of execution: "
              << support::bytesHuman(cdf.bytesForCoverage(0.99))
              << "\n\n";

    bench::paperVsMeasured(
        "shape of the execution profile",
        "50KB captures ~60%; 99% needs ~200KB; total ~260KB",
        support::bytesHuman(cdf.bytesForCoverage(0.60)) +
            " captures 60%; 99% needs " +
            support::bytesHuman(cdf.bytesForCoverage(0.99)) +
            "; total " + support::bytesHuman(cdf.totalBytes()));
    return 0;
}
