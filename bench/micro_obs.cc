/**
 * @file
 * micro_obs — cost of the observability layer itself, measured with
 * hand-rolled timing loops (no google-benchmark: the quantities of
 * interest are single-digit nanoseconds and percent-level deltas on a
 * replay-shaped loop, both easier to control directly).
 *
 * Measures:
 *   - counter add, gauge max, histogram record (enabled hot paths)
 *   - NullCounter add: the compiled-out call shape (SPIKESIM_OBS=0
 *     floor) in the same binary — must cost nothing over the bare loop
 *   - Span construct/destruct with tracing inactive and active
 *   - a replay-class loop (synthetic tag-check per ref) bare vs
 *     instrumented the way sim/engine.cc actually instruments shards:
 *     one bulk counter add per chunk — the acceptance gate is < 1%
 *
 * Writes BENCH_obs.json. `micro_obs [refs]` scales the loops (the
 * ctest smoke passes a small count; the default is sized for stable
 * nanosecond estimates).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench/common.hh"
#include "obs/registry.hh"
#include "obs/tracing.hh"
#include "support/panic.hh"

using namespace spikesim;

namespace {

/** Defeat dead-code elimination without perturbing the loop. */
template <class T>
inline void
keep(const T& v)
{
    asm volatile("" : : "r,m"(v) : "memory");
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** ns per iteration of `fn(i)` over `iters` iterations. */
template <class Fn>
double
nsPerOp(std::uint64_t iters, Fn&& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i)
        fn(i);
    return secondsSince(t0) * 1e9 / static_cast<double>(iters);
}

/**
 * The replay-shaped workload: a xorshift address stream driving a
 * direct-mapped tag check, a few ns per ref like the cache
 * simulators' inner loops. Returns seconds for `refs` references;
 * `counter` (null or live) gets one bulk add per 4096-ref chunk,
 * mirroring the per-shard adds in sim/engine.cc.
 */
template <class CounterT>
double
replayClassLoop(std::uint64_t refs, CounterT* counter)
{
    constexpr std::uint64_t kChunk = 4096;
    static std::uint64_t tags[1024];
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    std::uint64_t misses = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t done = 0; done < refs; done += kChunk) {
        const std::uint64_t n = std::min(kChunk, refs - done);
        for (std::uint64_t i = 0; i < n; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            const std::uint64_t line = x >> 6;
            std::uint64_t& slot = tags[line & 1023];
            misses += slot != line;
            slot = line;
        }
        if (counter != nullptr)
            counter->add(n);
    }
    const double s = secondsSince(t0);
    keep(misses);
    return s;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::ObsRun obs_run(bench::obsOptionsFromEnv(), argc, argv);
    bench::banner("Observability microbenchmark",
                  "registry/span hot-path cost, enabled vs compiled-out");

    std::uint64_t refs = 200'000'000;
    if (argc > 1) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(argv[1], &end, 10);
        if (end == argv[1] || *end != '\0' || v == 0)
            support::fatal(std::string("bad ref count '") + argv[1] +
                           "'\nusage: micro_obs [refs]");
        refs = v;
    }
    const std::uint64_t ops = std::max<std::uint64_t>(refs / 4, 1);

    obs::Counter& counter = obs::counter("bench.micro_obs.counter");
    obs::Gauge& gauge = obs::gauge("bench.micro_obs.gauge");
    obs::Histogram& hist = obs::histogram("bench.micro_obs.hist");
    obs::NullCounter null_counter;

    const double counter_ns =
        nsPerOp(ops, [&](std::uint64_t) { counter.add(1); });
    const double null_ns = nsPerOp(ops, [&](std::uint64_t i) {
        null_counter.add(i);
        keep(null_counter);
    });
    const double gauge_ns = nsPerOp(ops, [&](std::uint64_t i) {
        gauge.max(static_cast<std::int64_t>(i & 0xffff));
    });
    const double hist_ns =
        nsPerOp(ops, [&](std::uint64_t i) { hist.record(i | 1); });
    const double span_off_ns = nsPerOp(ops, [](std::uint64_t) {
        obs::Span span("micro.span", "bench");
    });

    // Span cost while a collection is live (events buffered + mutex).
    obs::startTracing();
    const std::uint64_t span_on_ops = std::min<std::uint64_t>(ops, 1u << 20);
    const double span_on_ns = nsPerOp(span_on_ops, [](std::uint64_t) {
        obs::Span span("micro.span", "bench");
    });
    obs::stopTracingToString(); // discard; this run measures cost only

    // Replay-shaped loop: bare, with a live counter (bulk add per
    // chunk, the sim/engine.cc pattern), and with the compiled-out
    // shape. Take the best of 3 to shed scheduler noise.
    double bare_s = 1e99, live_s = 1e99, null_s = 1e99;
    for (int rep = 0; rep < 3; ++rep) {
        bare_s = std::min(
            bare_s, replayClassLoop<obs::NullCounter>(refs, nullptr));
        live_s = std::min(live_s, replayClassLoop(refs, &counter));
        null_s = std::min(null_s,
                          replayClassLoop(refs, &null_counter));
    }
    const double live_pct = (live_s - bare_s) / bare_s * 100.0;
    const double null_pct = (null_s - bare_s) / bare_s * 100.0;

    std::cout << "hot-path costs (ns/op over "
              << static_cast<double>(ops) << " ops):\n"
              << "  counter.add(1):        " << counter_ns << "\n"
              << "  NullCounter.add(1):    " << null_ns
              << "  (compiled-out shape)\n"
              << "  gauge.max(v):          " << gauge_ns << "\n"
              << "  histogram.record(v):   " << hist_ns << "\n"
              << "  Span (tracing off):    " << span_off_ns << "\n"
              << "  Span (tracing on):     " << span_on_ns << "\n\n"
              << "replay-class loop (" << static_cast<double>(refs)
              << " refs, bulk add per 4096-ref chunk):\n"
              << "  bare:                  " << bare_s << " s\n"
              << "  instrumented (live):   " << live_s << " s  ("
              << live_pct << "% overhead)\n"
              << "  instrumented (null):   " << null_s << " s  ("
              << null_pct << "% overhead)\n\n";

    std::ofstream json("BENCH_obs.json");
    json << "{\n"
         << "  \"bench\": \"obs\",\n"
         << "  \"refs\": " << refs << ",\n"
         << "  \"counter_add_ns\": " << counter_ns << ",\n"
         << "  \"null_counter_add_ns\": " << null_ns << ",\n"
         << "  \"gauge_max_ns\": " << gauge_ns << ",\n"
         << "  \"histogram_record_ns\": " << hist_ns << ",\n"
         << "  \"span_inactive_ns\": " << span_off_ns << ",\n"
         << "  \"span_active_ns\": " << span_on_ns << ",\n"
         << "  \"replay_loop_bare_seconds\": " << bare_s << ",\n"
         << "  \"replay_loop_live_counter_seconds\": " << live_s << ",\n"
         << "  \"replay_loop_null_counter_seconds\": " << null_s << ",\n"
         << "  \"live_counter_overhead_percent\": " << live_pct << ",\n"
         << "  \"null_counter_overhead_percent\": " << null_pct << "\n"
         << "}\n";
    json.close();
    std::cout << "wrote BENCH_obs.json\n";
    obs_run.addArtifactFile("BENCH_obs.json");
    return 0;
}
