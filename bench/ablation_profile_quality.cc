/**
 * @file
 * Profile-quality ablation. The paper's optimizations are
 * profile-driven (Pixie on 2000 transactions); production deployments
 * inevitably optimize with imperfect profiles. This bench measures how
 * the layout gains degrade when the profile is (a) collected from the
 * measured run itself (oracle), (b) a separate run (the paper's
 * methodology and our default), (c) tiny, or (d/e) from a *different
 * workload entirely* -- a TPC-C order-entry mix and a YCSB key-value
 * mix standing in for "the profile shipped with last quarter's
 * benchmark kit".
 */

#include "bench/common.hh"
#include "db/tpcc.hh"
#include "db/ycsb.hh"

using namespace spikesim;

namespace {

std::uint64_t
missesWith(const bench::Workload& w, const profile::Profile& prof)
{
    core::PipelineOptions opts;
    opts.combo = core::OptCombo::All;
    opts.text_base = w.system->config().app_text_base;
    core::Layout layout = core::buildLayout(w.appProg(), prof, opts);
    bench::BenchReplay rep(w, layout);
    return rep.icache({64 * 1024, 128, 4}, sim::StreamFilter::AppOnly)
        .misses;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Profile-quality ablation",
                  "layout gains vs profile fidelity (64KB/128B/4-way)");
    bench::Workload w = bench::runWorkload(argc, argv);
    w.ensureDb(); // the tiny-profile rerun below executes transactions

    // Baseline (no optimization).
    std::uint64_t base_misses;
    {
        core::Layout base = w.appLayout(core::OptCombo::Base);
        bench::BenchReplay rep(w, base);
        base_misses = rep.icache({64 * 1024, 128, 4},
                                 sim::StreamFilter::AppOnly)
                          .misses;
    }

    // (a) Oracle profile: exact counts of the measured trace itself.
    profile::Profile oracle(w.appProg());
    for (const auto& e : w.buf.events())
        if (e.image == trace::ImageId::App)
            oracle.addBlock(e.block);
    // Oracle block counts alone miss edges; reuse the separate-run
    // edge/call structure at the oracle's block weights by merging.
    oracle.merge(w.appProfile());

    // (c) Tiny profile: 20 transactions.
    std::cerr << "[ablation] collecting tiny (20 txn) profile...\n";
    sim::System::Profiles tiny = w.system->collectProfiles(20);

    // (d) Mismatched workload: profile a TPC-C order-entry mix through
    // the same system hooks.
    std::cerr << "[ablation] collecting TPC-C profile...\n";
    db::TpccConfig tpcc_config;
    db::TpccDatabase tpcc(tpcc_config,
                          static_cast<db::EngineHooks*>(w.system.get()));
    tpcc.setup();
    profile::Profile tpcc_prof(w.appProg());
    {
        profile::ProfileRecorder rec(trace::ImageId::App, tpcc_prof);
        w.system->runRequests(w.profile_txns / 2, rec,
                            [&](std::uint16_t p) {
                                tpcc.runTransaction(p);
                            });
    }
    if (tpcc.verify() != "")
        std::cerr << "[ablation] WARNING: tpcc inconsistent: "
                  << tpcc.verify() << "\n";

    // (e) Mismatched workload, further out: a YCSB key-value mix --
    // Zipf-skewed point reads/updates with none of TPC-B's branch
    // structure.
    std::cerr << "[ablation] collecting YCSB profile...\n";
    db::YcsbConfig ycsb_config;
    db::YcsbDatabase ycsb(ycsb_config,
                          static_cast<db::EngineHooks*>(w.system.get()));
    ycsb.setup();
    profile::Profile ycsb_prof(w.appProg());
    {
        profile::ProfileRecorder rec(trace::ImageId::App, ycsb_prof);
        w.system->runRequests(w.profile_txns / 2, rec,
                              [&](std::uint16_t p) {
                                  ycsb.runRequest(p);
                              });
    }
    if (ycsb.verify() != "")
        std::cerr << "[ablation] WARNING: ycsb inconsistent: "
                  << ycsb.verify() << "\n";

    support::TablePrinter table(
        {"profile", "64KB misses", "reduction vs base"});
    auto add = [&](const std::string& name,
                   const profile::Profile& prof) {
        std::uint64_t m = missesWith(w, prof);
        table.addRow({name, support::withCommas(m),
                      support::percent(
                          1.0 - static_cast<double>(m) /
                                    static_cast<double>(base_misses))});
        return m;
    };
    table.addRow({"(none: base layout)",
                  support::withCommas(base_misses), "-"});
    add("oracle (measured run itself)", oracle);
    std::uint64_t fresh =
        add("separate run (paper methodology)", w.appProfile());
    std::uint64_t small = add("tiny profile (20 txns)", tiny.app);
    std::uint64_t cross = add("mismatched workload (TPC-C)", tpcc_prof);
    std::uint64_t kv = add("mismatched workload (YCSB)", ycsb_prof);
    table.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "profile robustness",
        "the paper profiles 2000 txns and evaluates on separate runs; "
        "PGO folklore says even rough profiles capture most gains",
        "separate-run profile " + support::withCommas(fresh) +
            " misses; tiny profile " + support::withCommas(small) +
            "; cross-workload TPC-C " + support::withCommas(cross) +
            ", YCSB " + support::withCommas(kv));
    return 0;
}
