/**
 * @file
 * Figure 13: interference between application and kernel instruction
 * streams -- for each miss, who owned the displaced line
 * (128KB/128B/4-way, combined streams).
 */

#include "bench/common.hh"

using namespace spikesim;

namespace {

void
matrix(const bench::Workload& w, const core::Layout& app,
       const core::Layout& kernel, const std::string& title,
       double* app_self_frac)
{
    std::cout << title << "\n";
    bench::BenchReplay rep(w, app, &kernel);
    auto r = rep.icache({128 * 1024, 128, 4},
                        sim::StreamFilter::Combined);
    const auto& m = r.interference;
    support::TablePrinter table({"missing process", "on app-owned line",
                                 "on kernel-owned line", "cold fill",
                                 "total"});
    const char* names[2] = {"application", "kernel"};
    for (int i = 0; i < 2; ++i)
        table.addRow({names[i], support::withCommas(m.counts[i][0]),
                      support::withCommas(m.counts[i][1]),
                      support::withCommas(m.counts[i][2]),
                      support::withCommas(m.missesBy(i))});
    table.addRow(
        {"both", support::withCommas(m.counts[0][0] + m.counts[1][0]),
         support::withCommas(m.counts[0][1] + m.counts[1][1]),
         support::withCommas(m.counts[0][2] + m.counts[1][2]),
         support::withCommas(r.misses)});
    table.print(std::cout);

    double app_self =
        m.missesBy(0) == 0
            ? 0.0
            : static_cast<double>(m.counts[0][0]) /
                  static_cast<double>(m.missesBy(0));
    double kern_on_app =
        m.missesBy(1) == 0
            ? 0.0
            : static_cast<double>(m.counts[1][0]) /
                  static_cast<double>(m.missesBy(1));
    std::cout << "application self-interference: "
              << support::percent(app_self)
              << "; kernel misses displacing app lines: "
              << support::percent(kern_on_app) << "\n\n";
    if (app_self_frac != nullptr)
        *app_self_frac = app_self;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Figure 13",
                  "app/kernel interference (128KB/128B/4-way)");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout kernel = w.kernelLayout();

    double base_self = 0, opt_self = 0;
    matrix(w, w.appLayout(core::OptCombo::Base), kernel,
           "(a) baseline OLTP binary", &base_self);
    matrix(w, w.appLayout(core::OptCombo::All), kernel,
           "(b) optimized OLTP binary", &opt_self);

    bench::paperVsMeasured(
        "application misses",
        "majority are self-interference; layout optimization reduces "
        "self-interference, raising the kernel's relative share",
        "app self-interference " + support::percent(base_self) +
            " (base) -> " + support::percent(opt_self) + " (optimized)");
    bench::paperVsMeasured(
        "kernel misses",
        "kernel interferes little with itself; most kernel misses are "
        "caused by the application",
        "see the kernel rows above");
    return 0;
}
