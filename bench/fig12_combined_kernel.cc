/**
 * @file
 * Figure 12: instruction cache behaviour of the combined application +
 * operating system instruction streams (128B lines, 4-way) for the
 * baseline (a) and optimized (b) application binaries. The "isolated"
 * columns replay each stream alone, the "combined" column replays the
 * interleaved streams -- the difference is interference.
 */

#include "bench/common.hh"

using namespace spikesim;

namespace {

constexpr std::uint32_t kSizesKb[] = {32, 64, 128, 256, 512};

void
runCase(const bench::Workload& w, const core::Layout& app,
        const core::Layout& kernel, const std::string& title,
        std::uint64_t* combined64)
{
    std::cout << title << "\n";
    bench::BenchReplay rep(w, app, &kernel);
    std::vector<mem::CacheConfig> configs;
    for (std::uint32_t kb : kSizesKb)
        configs.push_back({kb * 1024, 128, 4});
    auto a = rep.icacheColumn(configs, sim::StreamFilter::AppOnly);
    auto k = rep.icacheColumn(configs, sim::StreamFilter::KernelOnly);
    auto c = rep.icacheColumn(configs, sim::StreamFilter::Combined);

    support::TablePrinter table({"cache", "app isolated",
                                 "kernel isolated", "combined",
                                 "interference overhead"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        std::uint64_t isolated = a[i].misses + k[i].misses;
        double overhead =
            isolated == 0 ? 0.0
                          : static_cast<double>(c[i].misses) /
                                    static_cast<double>(isolated) -
                                1.0;
        if (kSizesKb[i] == 64 && combined64 != nullptr)
            *combined64 = c[i].misses;
        table.addRow({std::to_string(kSizesKb[i]) + "KB",
                      support::withCommas(a[i].misses),
                      support::withCommas(k[i].misses),
                      support::withCommas(c[i].misses),
                      "+" + support::percent(overhead)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Figure 12",
                  "combined application + OS instruction streams "
                  "(128B/4-way)");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);
    core::Layout kernel = w.kernelLayout();

    std::uint64_t base64 = 0, opt64 = 0;
    runCase(w, base, kernel, "(a) baseline OLTP binary", &base64);
    runCase(w, opt, kernel, "(b) optimized OLTP binary", &opt64);

    double reduction = 1.0 - static_cast<double>(opt64) /
                                 static_cast<double>(base64);
    bench::paperVsMeasured(
        "combined-stream miss reduction at 64KB",
        "45%-60% (vs 55%-65% for the isolated app stream)",
        support::percent(reduction));
    bench::paperVsMeasured(
        "interference",
        "kernel interference is more pronounced for the optimized "
        "binary (app misses shrink, interference stays)",
        "compare the interference overhead columns of (a) and (b)");
    return 0;
}
