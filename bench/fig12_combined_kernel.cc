/**
 * @file
 * Figure 12: instruction cache behaviour of the combined application +
 * operating system instruction streams (128B lines, 4-way) for the
 * baseline (a) and optimized (b) application binaries. The "isolated"
 * columns replay each stream alone, the "combined" column replays the
 * interleaved streams -- the difference is interference.
 */

#include "bench/common.hh"

using namespace spikesim;

namespace {

void
runCase(const bench::Workload& w, const core::Layout& app,
        const core::Layout& kernel, const std::string& title,
        double* reduction_out, std::uint64_t* combined64)
{
    std::cout << title << "\n";
    sim::Replayer rep(w.buf, app, &kernel);
    support::TablePrinter table({"cache", "app isolated",
                                 "kernel isolated", "combined",
                                 "interference overhead"});
    for (std::uint32_t kb : {32, 64, 128, 256, 512}) {
        mem::CacheConfig cfg{kb * 1024, 128, 4};
        auto a = rep.icache(cfg, sim::StreamFilter::AppOnly);
        auto k = rep.icache(cfg, sim::StreamFilter::KernelOnly);
        auto c = rep.icache(cfg, sim::StreamFilter::Combined);
        std::uint64_t isolated = a.misses + k.misses;
        double overhead =
            isolated == 0 ? 0.0
                          : static_cast<double>(c.misses) /
                                    static_cast<double>(isolated) -
                                1.0;
        if (kb == 64 && combined64 != nullptr)
            *combined64 = c.misses;
        table.addRow({std::to_string(kb) + "KB",
                      support::withCommas(a.misses),
                      support::withCommas(k.misses),
                      support::withCommas(c.misses),
                      "+" + support::percent(overhead)});
        (void)reduction_out;
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Figure 12",
                  "combined application + OS instruction streams "
                  "(128B/4-way)");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);
    core::Layout kernel = w.kernelLayout();

    std::uint64_t base64 = 0, opt64 = 0;
    runCase(w, base, kernel, "(a) baseline OLTP binary", nullptr,
            &base64);
    runCase(w, opt, kernel, "(b) optimized OLTP binary", nullptr,
            &opt64);

    double reduction = 1.0 - static_cast<double>(opt64) /
                                 static_cast<double>(base64);
    bench::paperVsMeasured(
        "combined-stream miss reduction at 64KB",
        "45%-60% (vs 55%-65% for the isolated app stream)",
        support::percent(reduction));
    bench::paperVsMeasured(
        "interference",
        "kernel interference is more pronounced for the optimized "
        "binary (app misses shrink, interference stays)",
        "compare the interference overhead columns of (a) and (b)");
    return 0;
}
