/**
 * @file
 * Figure 14: iTLB and unified L2 cache behaviour for the baseline and
 * optimized binaries on the SimOS configuration (64-entry fully
 * associative iTLB, 1.5MB 6-way L2), plus the paper's 21164 hardware
 * counter section (8KB i-cache, 48-entry iTLB, 2MB board cache).
 */

#include <iterator>

#include "bench/common.hh"
#include "sim/timing.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 14",
                  "iTLB and L2 misses, base vs optimized (SimOS "
                  "21364-like config)");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);
    core::Layout kernel = w.kernelLayout();

    mem::HierarchyConfig simos =
        sim::PlatformParams::sim21364().hierarchy;
    mem::HierarchyConfig h21164 =
        sim::PlatformParams::alpha21164().hierarchy;
    const mem::HierarchyConfig hierarchies[] = {simos, h21164};
    bench::BenchReplay base_rep(w, base, &kernel);
    bench::BenchReplay opt_rep(w, opt, &kernel);
    auto b_col = base_rep.hierarchyColumn(hierarchies);
    auto o_col = opt_rep.hierarchyColumn(hierarchies);
    const auto& b = b_col[0];
    const auto& o = o_col[0];

    support::TablePrinter table({"metric", "base", "optimized",
                                 "reduction"});
    auto pct = [](std::uint64_t ov, std::uint64_t bv) {
        return bv == 0 ? std::string("-")
                       : support::percent(
                             1.0 - static_cast<double>(ov) /
                                       static_cast<double>(bv));
    };
    table.addRow({"iTLB misses",
                  support::withCommas(b.total.itlb_misses),
                  support::withCommas(o.total.itlb_misses),
                  pct(o.total.itlb_misses, b.total.itlb_misses)});
    table.addRow({"L2 instr. misses",
                  support::withCommas(b.total.l2i.misses),
                  support::withCommas(o.total.l2i.misses),
                  pct(o.total.l2i.misses, b.total.l2i.misses)});
    table.addRow({"L2 data misses",
                  support::withCommas(b.total.l2d.misses),
                  support::withCommas(o.total.l2d.misses),
                  pct(o.total.l2d.misses, b.total.l2d.misses)});
    table.addRow({"L1I misses", support::withCommas(b.total.l1i.misses),
                  support::withCommas(o.total.l1i.misses),
                  pct(o.total.l1i.misses, b.total.l1i.misses)});
    // Standalone iTLB replay, instruction streams only: same TLB
    // geometry, one lookup per fetched L1I line — the caches around it
    // do not change what the iTLB sees. One fused column prices the
    // SimOS page size plus the 4KB base-page and 2MB huge-page
    // geometries the page-aware layout search optimizes for.
    const sim::ITlbSpec tlb_specs[] = {
        {simos.itlb_entries, simos.page_bytes, simos.l1i.line_bytes},
        {simos.itlb_entries, 4096, simos.l1i.line_bytes},
        {simos.itlb_entries, 2u * 1024 * 1024, simos.l1i.line_bytes},
    };
    auto b_tlb =
        base_rep.itlbColumn(tlb_specs, sim::StreamFilter::Combined);
    auto o_tlb =
        opt_rep.itlbColumn(tlb_specs, sim::StreamFilter::Combined);
    const char* tlb_names[] = {
        "iTLB misses (standalone)",
        "iTLB misses (standalone, 4KB pages)",
        "iTLB misses (standalone, 2MB pages)",
    };
    for (std::size_t i = 0; i < std::size(tlb_specs); ++i)
        table.addRow({tlb_names[i],
                      support::withCommas(b_tlb[i].misses),
                      support::withCommas(o_tlb[i].misses),
                      pct(o_tlb[i].misses, b_tlb[i].misses)});
    table.print(std::cout);
    std::cout << "\n";

    // The paper's 21164 hardware-counter measurements.
    std::cout << "21164 hardware-counter section (8KB DM i-cache, "
                 "48-entry iTLB, 2MB board cache):\n";
    const auto& b164 = b_col[1];
    const auto& o164 = o_col[1];
    support::TablePrinter hw({"metric", "base", "optimized",
                              "reduction"});
    hw.addRow({"i-cache misses (8KB)",
               support::withCommas(b164.total.l1i.misses),
               support::withCommas(o164.total.l1i.misses),
               pct(o164.total.l1i.misses, b164.total.l1i.misses)});
    hw.addRow({"iTLB misses (48-entry)",
               support::withCommas(b164.total.itlb_misses),
               support::withCommas(o164.total.itlb_misses),
               pct(o164.total.itlb_misses, b164.total.itlb_misses)});
    hw.addRow({"board cache misses (2MB)",
               support::withCommas(b164.total.l2i.misses +
                                   b164.total.l2d.misses),
               support::withCommas(o164.total.l2i.misses +
                                   o164.total.l2d.misses),
               pct(o164.total.l2i.misses +
                       o164.total.l2d.misses,
                   b164.total.l2i.misses +
                       b164.total.l2d.misses)});
    hw.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "iTLB misses", "drop substantially (better page-level packing)",
        pct(o.total.itlb_misses, b.total.itlb_misses) + " reduction");
    bench::paperVsMeasured(
        "L2 misses",
        "instruction side improves strongly, data side slightly "
        "(less interference)",
        "instr " +
            pct(o.total.l2i.misses, b.total.l2i.misses) +
            ", data " +
            pct(o.total.l2d.misses, b.total.l2d.misses));
    bench::paperVsMeasured(
        "21164 hardware counters",
        "-28% i-cache, -43% iTLB, -39% board cache",
        pct(o164.total.l1i.misses, b164.total.l1i.misses) +
            " i-cache, " +
            pct(o164.total.itlb_misses, b164.total.itlb_misses) +
            " iTLB, " +
            pct(o164.total.l2i.misses + o164.total.l2d.misses,
                b164.total.l2i.misses +
                    b164.total.l2d.misses) +
            " board cache");
    return 0;
}
