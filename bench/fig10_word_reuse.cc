/**
 * @file
 * Figure 10: how many times an individual instruction word is used
 * before its line is replaced (128KB/128B/4-way). Bucket 0 is the
 * paper's headline: words fetched into the cache but never executed.
 */

#include "bench/common.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 10",
                  "individual instruction reuse before replacement "
                  "(128KB/128B/4-way)");
    bench::Workload w = bench::runWorkload(argc, argv);
    mem::CacheConfig cache{128 * 1024, 128, 4};
    core::Layout base_layout = w.appLayout(core::OptCombo::Base);
    core::Layout opt_layout = w.appLayout(core::OptCombo::All);
    bench::BenchReplay base_rep(w, base_layout);
    bench::BenchReplay opt_rep(w, opt_layout);
    sim::WordStats base =
        base_rep.instrumented(cache, sim::StreamFilter::AppOnly);
    sim::WordStats opt =
        opt_rep.instrumented(cache, sim::StreamFilter::AppOnly);

    support::TablePrinter table({"times used", "base", "optimized"});
    for (std::size_t n = 0; n <= 15; ++n) {
        std::string label = n == 15 ? "15+" : std::to_string(n);
        table.addRow({label,
                      support::percent(base.word_reuse.fraction(n)),
                      support::percent(opt.word_reuse.fraction(n))});
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "fetched-but-never-used instructions",
        "over half for base; optimized 21% vs base 46% "
        "(the packing claim in section 4.1)",
        "base " + support::percent(base.unused_word_fraction) +
            ", optimized " + support::percent(opt.unused_word_fraction));
    bench::paperVsMeasured(
        "multi-use instructions",
        "optimized raises the number of instructions used more than "
        "once before eviction",
        "base >1 uses: " +
            support::percent(1.0 - base.word_reuse.fraction(0) -
                             base.word_reuse.fraction(1)) +
            ", optimized: " +
            support::percent(1.0 - opt.word_reuse.fraction(0) -
                             opt.word_reuse.fraction(1)));
    return 0;
}
