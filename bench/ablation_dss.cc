/**
 * @file
 * OLTP vs DSS workload ablation. The paper (and the studies it builds
 * on, e.g. Barroso et al. ISCA'98 and the Ramirez et al. software
 * trace cache work) makes the point that DSS is scan-dominated, has a
 * small instruction footprint, behaves far better in the i-cache, and
 * benefits much less from code layout. This bench runs both workload
 * classes on the same engine and binary and compares.
 */

#include "bench/common.hh"
#include "metrics/footprint.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("OLTP vs DSS ablation",
                  "layout sensitivity of the two workload classes");
    // The shared OLTP workload also provides the profile used to
    // optimize the binary (as in production PGO: profile once).
    bench::Workload w = bench::runWorkload(argc, argv);
    w.ensureDb(); // the DSS queries below scan the database

    std::uint64_t queries = w.trace_txns / 5 + 8;
    std::cerr << "[workload] tracing " << queries << " DSS queries...\n";
    trace::TraceBuffer dss_buf;
    w.system->runDss(queries, dss_buf);
    std::cerr << "[workload] DSS trace: " << dss_buf.size()
              << " events\n\n";

    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);

    support::TablePrinter table({"workload", "binary", "32KB misses",
                                 "64KB misses", "misses/1k instrs @64KB"});
    double reduction[2] = {0, 0};
    int row = 0;
    const trace::TraceBuffer* streams[2] = {&w.buf, &dss_buf};
    for (const trace::TraceBuffer* stream : streams) {
        std::string name = row == 0 ? "OLTP (TPC-B)" : "DSS (scans)";
        std::uint64_t base64 = 0;
        for (const core::Layout* layout : {&base, &opt}) {
            bench::BenchReplay rep(*stream, *layout, nullptr, w.pool());
            const mem::CacheConfig configs[] = {{32 * 1024, 128, 4},
                                                {64 * 1024, 128, 4}};
            auto col =
                rep.icacheColumn(configs, sim::StreamFilter::AppOnly);
            const auto& r32 = col[0];
            const auto& r64 = col[1];
            std::uint64_t instrs =
                rep.dynamicInstrs(sim::StreamFilter::AppOnly);
            double mpki = instrs == 0
                              ? 0.0
                              : 1000.0 * static_cast<double>(r64.misses) /
                                    static_cast<double>(instrs);
            table.addRow({name,
                          layout == &base ? "base" : "optimized",
                          support::withCommas(r32.misses),
                          support::withCommas(r64.misses),
                          support::fixed(mpki, 2)});
            if (layout == &base)
                base64 = r64.misses;
            else
                reduction[row] =
                    1.0 - static_cast<double>(r64.misses) /
                              static_cast<double>(base64);
        }
        ++row;
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "workload sensitivity to code layout",
        "OLTP gains heavily; DSS has a much smaller instruction "
        "footprint and gains far less",
        "64KB miss reduction: OLTP " + support::percent(reduction[0]) +
            ", DSS " + support::percent(reduction[1]));
    return 0;
}
