/**
 * @file
 * Ablation: the layout search engine (opt/search.hh) versus the greedy
 * pipeline it is seeded from. Three application binaries are priced on
 * the Figure-4-style cache grid (32KB-512KB x 16B-256B lines,
 * direct-mapped): the unoptimized baseline, the greedy `All` combo,
 * and the searched layout (ExtTSP-proxy annealing seeded from `All`,
 * periodically re-ranked against ground-truth i-cache replay).
 *
 * The searched layout is guaranteed no worse than greedy `All` on the
 * re-rank configuration (the paper's Figure 7 setup: 64KB, 128B lines,
 * 4-way) because the seed participates in every re-rank; everywhere
 * else the numbers land where they land and are reported honestly.
 *
 * Deterministic: `--seed N` (or SPIKESIM_SEED) fixes the search RNG,
 * and two runs with the same seed produce byte-identical layouts and
 * an identical BENCH_layout_search.json (the JSON carries no timings).
 * Search budget is overridable for smoke tests via
 * SPIKESIM_SEARCH_EPOCHS / SPIKESIM_SEARCH_BATCH.
 */

#include <algorithm>
#include <fstream>
#include <sstream>

#include "bench/common.hh"
#include "opt/search.hh"
#include "sim/sweep.hh"
#include "support/panic.hh"

using namespace spikesim;

namespace {

const std::vector<std::uint32_t> kSizesKb{32, 64, 128, 256, 512};
const std::vector<std::uint32_t> kLines{16, 32, 64, 128, 256};

int
envInt(const char* name, int fallback)
{
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    const int parsed = std::atoi(v);
    if (parsed <= 0)
        support::fatal(std::string(name) + " must be a positive integer");
    return parsed;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Ablation",
                  "layout search engine (ExtTSP annealing) vs greedy "
                  "pipeline");
    bench::Workload w = bench::runWorkload(argc, argv);

    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout greedy = w.appLayout(core::OptCombo::All);

    core::PipelineOptions popts;
    popts.combo = core::OptCombo::All;
    popts.text_base = w.system->config().app_text_base;

    opt::SearchOptions sopts;
    sopts.seed = w.seed;
    sopts.epochs = envInt("SPIKESIM_SEARCH_EPOCHS", sopts.epochs);
    sopts.batch = envInt("SPIKESIM_SEARCH_BATCH", sopts.batch);

    // Page-aware hierarchical mode: hot/cold + Codestitcher-merge
    // candidates seed the annealer, perturbation respects 4KB page
    // regions, and re-ranking optimizes a combined objective over
    // fused i-cache misses and standalone-iTLB misses at 4KB / 2MB
    // pages. The iTLB weights reflect the relative stall costs
    // (sim/timing.hh: ~30-cycle iTLB fill vs ~12-cycle L2 hit) scaled
    // by how much rarer page crossings are than line misses.
    const auto envDouble = [](const char* name, double fallback) {
        const char* v = std::getenv(name);
        return v == nullptr || *v == '\0' ? fallback : std::atof(v);
    };
    sopts.page.enabled = true;
    sopts.page.itlb4k_weight = envDouble("SPIKESIM_OBJ_ITLB4K_W", 2.0);
    sopts.page.itlb2m_weight = envDouble("SPIKESIM_OBJ_ITLB2M_W", 10.0);
    // Hot/cold threshold scales with the profiling run: block counts
    // grow linearly with profiled transactions, so a fixed count would
    // classify everything hot on long profiles and everything cold on
    // short ones. profile_txns/8 puts the knee where the packed hot
    // region roughly matches the 64-entry x 4KB iTLB reach on the
    // default workload.
    sopts.page.hot_threshold = static_cast<std::uint64_t>(envInt(
        "SPIKESIM_SEARCH_HOT_THRESHOLD",
        static_cast<int>(std::max<std::uint64_t>(1, w.profile_txns / 8))));
    // Page-aware proxy terms (all default-zero otherwise): gap-bucket
    // penalty past the ExtTSP decay windows, 4KB/2MB co-residency
    // bonuses, and a page-crossing iTLB charge.
    sopts.exttsp.gap_weight = envDouble("SPIKESIM_GAP_W", 0.05);
    sopts.exttsp.page4k_weight = envDouble("SPIKESIM_P4K_W", 0.02);
    sopts.exttsp.page2m_weight = envDouble("SPIKESIM_P2M_W", 0.01);
    sopts.exttsp.itlb_weight = envDouble("SPIKESIM_ITLB_W", 0.05);

    std::cout << "search: seed " << sopts.seed << ", " << sopts.epochs
              << " epochs x " << sopts.batch
              << " candidates, re-rank every " << sopts.rerank_every
              << " epochs on " << sopts.rerank_config.size_bytes / 1024
              << "KB/" << sopts.rerank_config.line_bytes << "B/"
              << sopts.rerank_config.assoc << "-way\n"
              << "page-aware: objective = "
              << sopts.page.icache_weight << "*icache + "
              << sopts.page.itlb4k_weight << "*itlb4k + "
              << sopts.page.itlb2m_weight << "*itlb2m ("
              << sopts.page.itlb_entries << "-entry iTLB), regions at "
              << sopts.page.region_page_bytes << "B pages\n\n";

    const opt::SearchResult searched =
        opt::searchLayout(w.appProg(), w.appProfile(), popts, sopts,
                          &w.buf, nullptr, w.pool());

    std::cout << "proxy (ExtTSP) score: seed " << searched.seed_score
              << " -> best " << searched.best_score << " ("
              << searched.proxy_evals << " proxy evals)\n"
              << "ground truth: " << searched.sim_evals
              << " i-cache replays, " << searched.sim_cache_hits
              << " fingerprint-cache hits\n"
              << "re-rank config misses: greedy All "
              << support::withCommas(searched.seed_misses)
              << " -> searched "
              << support::withCommas(searched.best_misses) << "\n"
              << "standalone iTLB misses: 4KB pages "
              << support::withCommas(searched.seed_itlb4k) << " -> "
              << support::withCommas(searched.best_itlb4k)
              << ", 2MB pages "
              << support::withCommas(searched.seed_itlb2m) << " -> "
              << support::withCommas(searched.best_itlb2m) << "\n"
              << "combined objective: " << searched.seed_objective
              << " -> " << searched.best_objective << "\n"
              << "winner region map: " << searched.regions.num_regions
              << " regions (" << searched.regions.num_hot << " hot), "
              << searched.regions.hot_segments << " hot segments / "
              << support::withCommas(searched.regions.hot_bytes)
              << " bytes, " << searched.regions.cold_segments
              << " cold segments / "
              << support::withCommas(searched.regions.cold_bytes)
              << " bytes\n\n";

    // Price all three binaries on the Figure-4 grid in one parallel
    // sweep pass.
    sim::SweepSpec spec;
    for (std::uint32_t kb : kSizesKb)
        spec.size_bytes.push_back(kb * 1024);
    spec.line_bytes = kLines;
    spec.assocs = {1};

    std::vector<sim::SweepJob> jobs{
        {&base, nullptr, sim::StreamFilter::AppOnly, spec, "base"},
        {&greedy, nullptr, sim::StreamFilter::AppOnly, spec, "greedy"},
        {&searched.layout, nullptr, sim::StreamFilter::AppOnly, spec,
         "searched"},
    };
    std::vector<sim::SweepResult> grid =
        sim::runSweepJobs(w.buf, jobs, w.pool());
    const sim::SweepResult& g_base = grid[0];
    const sim::SweepResult& g_greedy = grid[1];
    const sim::SweepResult& g_search = grid[2];

    std::cout << "app i-cache misses at 128B lines (direct-mapped):\n";
    support::TablePrinter table(
        {"cache", "base", "greedy All", "searched", "vs greedy"});
    for (std::uint32_t kb : kSizesKb) {
        const std::uint64_t mg = g_greedy.misses(kb * 1024, 128, 1);
        const std::uint64_t ms = g_search.misses(kb * 1024, 128, 1);
        const double delta =
            mg == 0 ? 0.0
                    : (static_cast<double>(ms) - static_cast<double>(mg)) /
                          static_cast<double>(mg);
        table.addRow({std::to_string(kb) + "KB",
                      support::withCommas(g_base.misses(kb * 1024, 128, 1)),
                      support::withCommas(mg), support::withCommas(ms),
                      support::percent(delta)});
    }
    table.print(std::cout);
    std::cout << "\n";

    std::cout << "search-budget vs miss curve (re-rank config):\n";
    for (const auto& p : searched.rerank_curve)
        std::cout << "  after " << p.epoch << " epochs: "
                  << support::withCommas(p.misses) << " misses, "
                  << support::withCommas(p.itlb4k)
                  << " iTLB@4KB, objective " << p.objective << "\n";
    std::cout << "\n";

    std::ofstream json("BENCH_layout_search.json");
    json << "{\n"
         << "  \"bench\": \"layout_search\",\n"
         << "  \"seed\": " << sopts.seed << ",\n"
         << "  \"profile_txns\": " << w.profile_txns << ",\n"
         << "  \"trace_txns\": " << w.trace_txns << ",\n"
         << "  \"epochs\": " << sopts.epochs << ",\n"
         << "  \"batch\": " << sopts.batch << ",\n"
         << "  \"proxy_evals\": " << searched.proxy_evals << ",\n"
         << "  \"sim_evals\": " << searched.sim_evals << ",\n"
         << "  \"sim_cache_hits\": " << searched.sim_cache_hits << ",\n"
         << "  \"seed_exttsp_score\": " << searched.seed_score << ",\n"
         << "  \"best_exttsp_score\": " << searched.best_score << ",\n"
         << "  \"rerank_config\": {\"size_bytes\": "
         << sopts.rerank_config.size_bytes
         << ", \"line_bytes\": " << sopts.rerank_config.line_bytes
         << ", \"assoc\": " << sopts.rerank_config.assoc << "},\n"
         << "  \"greedy_all_misses\": " << searched.seed_misses << ",\n"
         << "  \"searched_misses\": " << searched.best_misses << ",\n"
         << "  \"objective_weights\": {\"icache\": "
         << sopts.page.icache_weight
         << ", \"itlb4k\": " << sopts.page.itlb4k_weight
         << ", \"itlb2m\": " << sopts.page.itlb2m_weight << "},\n"
         << "  \"page_geometry\": {\"region_page_bytes\": "
         << sopts.page.region_page_bytes
         << ", \"itlb_entries\": " << sopts.page.itlb_entries << "},\n"
         << "  \"greedy_all_itlb4k\": " << searched.seed_itlb4k << ",\n"
         << "  \"searched_itlb4k\": " << searched.best_itlb4k << ",\n"
         << "  \"greedy_all_itlb2m\": " << searched.seed_itlb2m << ",\n"
         << "  \"searched_itlb2m\": " << searched.best_itlb2m << ",\n"
         << "  \"seed_objective\": " << searched.seed_objective << ",\n"
         << "  \"best_objective\": " << searched.best_objective << ",\n"
         << "  \"region_map\": {\"num_regions\": "
         << searched.regions.num_regions
         << ", \"num_hot\": " << searched.regions.num_hot
         << ", \"hot_segments\": " << searched.regions.hot_segments
         << ", \"cold_segments\": " << searched.regions.cold_segments
         << ", \"hot_bytes\": " << searched.regions.hot_bytes
         << ", \"cold_bytes\": " << searched.regions.cold_bytes
         << "},\n"
         << "  \"rerank_curve\": [";
    for (std::size_t i = 0; i < searched.rerank_curve.size(); ++i)
        json << (i ? ", " : "") << "{\"epoch\": "
             << searched.rerank_curve[i].epoch << ", \"misses\": "
             << searched.rerank_curve[i].misses << ", \"itlb4k\": "
             << searched.rerank_curve[i].itlb4k << ", \"objective\": "
             << searched.rerank_curve[i].objective << "}";
    json << "],\n"
         << "  \"epoch_best_exttsp\": [";
    for (std::size_t i = 0; i < searched.epoch_best.size(); ++i)
        json << (i ? ", " : "") << searched.epoch_best[i];
    json << "],\n"
         << "  \"grid\": [\n";
    bool first = true;
    for (std::uint32_t kb : kSizesKb)
        for (std::uint32_t line : kLines) {
            if (!first)
                json << ",\n";
            first = false;
            json << "    {\"size_kb\": " << kb << ", \"line_b\": " << line
                 << ", \"base\": " << g_base.misses(kb * 1024, line, 1)
                 << ", \"greedy_all\": "
                 << g_greedy.misses(kb * 1024, line, 1)
                 << ", \"searched\": "
                 << g_search.misses(kb * 1024, line, 1) << "}";
        }
    json << "\n  ]\n}\n";
    json.close(); // flush before the manifest embeds it
    std::cout << "wrote BENCH_layout_search.json\n\n";
    w.recordArtifact("BENCH_layout_search.json");

    if (w.obs()) {
        obs::Manifest& m = w.obs()->manifest();
        auto num = [](double v) {
            std::ostringstream s;
            s << v;
            return s.str();
        };
        m.info.emplace_back("search.objective_weights",
                            "icache=" + num(sopts.page.icache_weight) +
                                ",itlb4k=" +
                                num(sopts.page.itlb4k_weight) +
                                ",itlb2m=" +
                                num(sopts.page.itlb2m_weight));
        m.info.emplace_back(
            "search.page_geometry",
            "region_page_bytes=" +
                std::to_string(sopts.page.region_page_bytes) +
                ",itlb_entries=" +
                std::to_string(sopts.page.itlb_entries) +
                ",itlb_pages=4096/2097152");
        m.info.emplace_back(
            "search.region_map",
            "num_regions=" +
                std::to_string(searched.regions.num_regions) +
                ",num_hot=" + std::to_string(searched.regions.num_hot) +
                ",hot_segments=" +
                std::to_string(searched.regions.hot_segments) +
                ",cold_segments=" +
                std::to_string(searched.regions.cold_segments) +
                ",hot_bytes=" +
                std::to_string(searched.regions.hot_bytes) +
                ",cold_bytes=" +
                std::to_string(searched.regions.cold_bytes));
    }

    bench::paperVsMeasured(
        "searched vs greedy All (64KB/128B/4-way app misses)",
        "n/a -- the search engine extends the paper's greedy pipeline",
        support::withCommas(searched.best_misses) + " vs " +
            support::withCommas(searched.seed_misses) +
            " misses; iTLB@4KB " +
            support::withCommas(searched.best_itlb4k) + " vs " +
            support::withCommas(searched.seed_itlb4k) +
            " (combined objective never worse by construction)");
    return 0;
}
