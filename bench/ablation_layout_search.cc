/**
 * @file
 * Ablation: the layout search engine (opt/search.hh) versus the greedy
 * pipeline it is seeded from. Three application binaries are priced on
 * the Figure-4-style cache grid (32KB-512KB x 16B-256B lines,
 * direct-mapped): the unoptimized baseline, the greedy `All` combo,
 * and the searched layout (ExtTSP-proxy annealing seeded from `All`,
 * periodically re-ranked against ground-truth i-cache replay).
 *
 * The searched layout is guaranteed no worse than greedy `All` on the
 * re-rank configuration (the paper's Figure 7 setup: 64KB, 128B lines,
 * 4-way) because the seed participates in every re-rank; everywhere
 * else the numbers land where they land and are reported honestly.
 *
 * Deterministic: `--seed N` (or SPIKESIM_SEED) fixes the search RNG,
 * and two runs with the same seed produce byte-identical layouts and
 * an identical BENCH_layout_search.json (the JSON carries no timings).
 * Search budget is overridable for smoke tests via
 * SPIKESIM_SEARCH_EPOCHS / SPIKESIM_SEARCH_BATCH.
 */

#include <fstream>

#include "bench/common.hh"
#include "opt/search.hh"
#include "sim/sweep.hh"
#include "support/panic.hh"

using namespace spikesim;

namespace {

const std::vector<std::uint32_t> kSizesKb{32, 64, 128, 256, 512};
const std::vector<std::uint32_t> kLines{16, 32, 64, 128, 256};

int
envInt(const char* name, int fallback)
{
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    const int parsed = std::atoi(v);
    if (parsed <= 0)
        support::fatal(std::string(name) + " must be a positive integer");
    return parsed;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Ablation",
                  "layout search engine (ExtTSP annealing) vs greedy "
                  "pipeline");
    bench::Workload w = bench::runWorkload(argc, argv);

    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout greedy = w.appLayout(core::OptCombo::All);

    core::PipelineOptions popts;
    popts.combo = core::OptCombo::All;
    popts.text_base = w.system->config().app_text_base;

    opt::SearchOptions sopts;
    sopts.seed = w.seed;
    sopts.epochs = envInt("SPIKESIM_SEARCH_EPOCHS", sopts.epochs);
    sopts.batch = envInt("SPIKESIM_SEARCH_BATCH", sopts.batch);

    std::cout << "search: seed " << sopts.seed << ", " << sopts.epochs
              << " epochs x " << sopts.batch
              << " candidates, re-rank every " << sopts.rerank_every
              << " epochs on " << sopts.rerank_config.size_bytes / 1024
              << "KB/" << sopts.rerank_config.line_bytes << "B/"
              << sopts.rerank_config.assoc << "-way\n\n";

    const opt::SearchResult searched =
        opt::searchLayout(w.appProg(), w.appProfile(), popts, sopts,
                          &w.buf, nullptr, w.pool());

    std::cout << "proxy (ExtTSP) score: seed " << searched.seed_score
              << " -> best " << searched.best_score << " ("
              << searched.proxy_evals << " proxy evals)\n"
              << "ground truth: " << searched.sim_evals
              << " i-cache replays, " << searched.sim_cache_hits
              << " fingerprint-cache hits\n"
              << "re-rank config misses: greedy All "
              << support::withCommas(searched.seed_misses)
              << " -> searched "
              << support::withCommas(searched.best_misses) << "\n\n";

    // Price all three binaries on the Figure-4 grid in one parallel
    // sweep pass.
    sim::SweepSpec spec;
    for (std::uint32_t kb : kSizesKb)
        spec.size_bytes.push_back(kb * 1024);
    spec.line_bytes = kLines;
    spec.assocs = {1};

    std::vector<sim::SweepJob> jobs{
        {&base, nullptr, sim::StreamFilter::AppOnly, spec, "base"},
        {&greedy, nullptr, sim::StreamFilter::AppOnly, spec, "greedy"},
        {&searched.layout, nullptr, sim::StreamFilter::AppOnly, spec,
         "searched"},
    };
    std::vector<sim::SweepResult> grid =
        sim::runSweepJobs(w.buf, jobs, w.pool());
    const sim::SweepResult& g_base = grid[0];
    const sim::SweepResult& g_greedy = grid[1];
    const sim::SweepResult& g_search = grid[2];

    std::cout << "app i-cache misses at 128B lines (direct-mapped):\n";
    support::TablePrinter table(
        {"cache", "base", "greedy All", "searched", "vs greedy"});
    for (std::uint32_t kb : kSizesKb) {
        const std::uint64_t mg = g_greedy.misses(kb * 1024, 128, 1);
        const std::uint64_t ms = g_search.misses(kb * 1024, 128, 1);
        const double delta =
            mg == 0 ? 0.0
                    : (static_cast<double>(ms) - static_cast<double>(mg)) /
                          static_cast<double>(mg);
        table.addRow({std::to_string(kb) + "KB",
                      support::withCommas(g_base.misses(kb * 1024, 128, 1)),
                      support::withCommas(mg), support::withCommas(ms),
                      support::percent(delta)});
    }
    table.print(std::cout);
    std::cout << "\n";

    std::cout << "search-budget vs miss curve (re-rank config):\n";
    for (const auto& p : searched.rerank_curve)
        std::cout << "  after " << p.epoch << " epochs: "
                  << support::withCommas(p.misses) << " misses\n";
    std::cout << "\n";

    std::ofstream json("BENCH_layout_search.json");
    json << "{\n"
         << "  \"bench\": \"layout_search\",\n"
         << "  \"seed\": " << sopts.seed << ",\n"
         << "  \"profile_txns\": " << w.profile_txns << ",\n"
         << "  \"trace_txns\": " << w.trace_txns << ",\n"
         << "  \"epochs\": " << sopts.epochs << ",\n"
         << "  \"batch\": " << sopts.batch << ",\n"
         << "  \"proxy_evals\": " << searched.proxy_evals << ",\n"
         << "  \"sim_evals\": " << searched.sim_evals << ",\n"
         << "  \"sim_cache_hits\": " << searched.sim_cache_hits << ",\n"
         << "  \"seed_exttsp_score\": " << searched.seed_score << ",\n"
         << "  \"best_exttsp_score\": " << searched.best_score << ",\n"
         << "  \"rerank_config\": {\"size_bytes\": "
         << sopts.rerank_config.size_bytes
         << ", \"line_bytes\": " << sopts.rerank_config.line_bytes
         << ", \"assoc\": " << sopts.rerank_config.assoc << "},\n"
         << "  \"greedy_all_misses\": " << searched.seed_misses << ",\n"
         << "  \"searched_misses\": " << searched.best_misses << ",\n"
         << "  \"rerank_curve\": [";
    for (std::size_t i = 0; i < searched.rerank_curve.size(); ++i)
        json << (i ? ", " : "") << "{\"epoch\": "
             << searched.rerank_curve[i].epoch << ", \"misses\": "
             << searched.rerank_curve[i].misses << "}";
    json << "],\n"
         << "  \"epoch_best_exttsp\": [";
    for (std::size_t i = 0; i < searched.epoch_best.size(); ++i)
        json << (i ? ", " : "") << searched.epoch_best[i];
    json << "],\n"
         << "  \"grid\": [\n";
    bool first = true;
    for (std::uint32_t kb : kSizesKb)
        for (std::uint32_t line : kLines) {
            if (!first)
                json << ",\n";
            first = false;
            json << "    {\"size_kb\": " << kb << ", \"line_b\": " << line
                 << ", \"base\": " << g_base.misses(kb * 1024, line, 1)
                 << ", \"greedy_all\": "
                 << g_greedy.misses(kb * 1024, line, 1)
                 << ", \"searched\": "
                 << g_search.misses(kb * 1024, line, 1) << "}";
        }
    json << "\n  ]\n}\n";
    json.close(); // flush before the manifest embeds it
    std::cout << "wrote BENCH_layout_search.json\n\n";
    w.recordArtifact("BENCH_layout_search.json");

    bench::paperVsMeasured(
        "searched vs greedy All (64KB/128B/4-way app misses)",
        "n/a -- the search engine extends the paper's greedy pipeline",
        support::withCommas(searched.best_misses) + " vs " +
            support::withCommas(searched.seed_misses) +
            " (never worse by construction)");
    return 0;
}
