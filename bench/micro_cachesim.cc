/**
 * @file
 * Microbenchmarks for the trace-replay and cache simulation machinery
 * (the inner loops of every figure sweep).
 *
 * Before the google-benchmark suite runs, a headline comparison prices
 * the Figure 4 sweep (25 direct-mapped configurations: 5 cache sizes x
 * 5 line sizes) three ways -- per-config replay, single-pass
 * stack-distance sweep, and the parallel sweep executor -- verifies
 * the miss counts are bit-identical, and writes the numbers to
 * BENCH_cachesim.json so the perf trajectory is tracked across PRs.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>

#include "bench/common.hh"
#include "core/pipeline.hh"
#include "mem/cache.hh"
#include "sim/sweep.hh"
#include "support/rng.hh"
#include "support/threadpool.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"

using namespace spikesim;

namespace {

// RNG stream id for the random-address microbench, derived from the
// shared bench seed (bench::seedFromEnv).
constexpr std::uint64_t kRawAccessStream = 7;

/** Shared workload: image + profile + a modest trace. */
struct Shared
{
    synth::SyntheticProgram image;
    profile::Profile prof;
    trace::TraceBuffer buf;

    Shared()
        : image(synth::buildSyntheticProgram(
              synth::SynthParams::oracleLike())),
          prof(image.prog)
    {
        profile::ProfileRecorder rec(trace::ImageId::App, prof);
        trace::TeeSink tee({&rec, &buf});
        synth::CfgWalker w(image.prog, trace::ImageId::App, 1);
        trace::ExecContext ctx;
        for (int i = 0; i < 400; ++i) {
            w.run(image.entry("sql_exec_update"), ctx, tee);
            w.run(image.entry("txn_commit"), ctx, tee);
        }
    }
};

Shared&
shared()
{
    static Shared s;
    return s;
}

core::Layout
layoutFor(core::OptCombo combo)
{
    core::PipelineOptions opts;
    opts.combo = combo;
    return core::buildLayout(shared().image.prog, shared().prof, opts);
}

sim::SweepSpec
fig04Spec()
{
    sim::SweepSpec spec;
    for (std::uint32_t kb : {32, 64, 128, 256, 512})
        spec.size_bytes.push_back(kb * 1024);
    spec.line_bytes = {16, 32, 64, 128, 256};
    spec.assocs = {1};
    return spec;
}

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Headline comparison: per-config replay vs single-pass sweep vs the
 * parallel executor on the 25-configuration Figure 4 sweep, with a
 * differential check that the sweep reproduces the per-config miss
 * counts exactly. Writes BENCH_cachesim.json.
 */
void
runSweepComparison()
{
    using clock = std::chrono::steady_clock;
    Shared& s = shared();
    core::Layout base = layoutFor(core::OptCombo::Base);
    core::Layout opt = layoutFor(core::OptCombo::All);
    sim::SweepSpec spec = fig04Spec();
    sim::Replayer rep(s.buf, base);

    // Per-config path: one full trace replay per configuration.
    auto t0 = clock::now();
    std::vector<std::uint64_t> per_config_misses;
    std::uint64_t line_accesses = 0;
    per_config_misses.reserve(spec.numConfigs());
    for (std::uint32_t size : spec.size_bytes) {
        for (std::uint32_t line : spec.line_bytes) {
            auto r = rep.icache({size, line, 1},
                                sim::StreamFilter::AppOnly);
            per_config_misses.push_back(r.misses);
            line_accesses += r.accesses;
        }
    }
    auto t1 = clock::now();

    // Single-pass path: one resolution, one pass per line size.
    sim::SweepResult sweep =
        rep.icacheSweep(spec, sim::StreamFilter::AppOnly);
    auto t2 = clock::now();

    // Differential check: the sweep must be bit-identical.
    std::size_t i = 0;
    std::uint64_t mismatches = 0;
    for (std::uint32_t size : spec.size_bytes)
        for (std::uint32_t line : spec.line_bytes)
            if (sweep.misses(size, line, 1) != per_config_misses[i++])
                ++mismatches;
    if (mismatches != 0) {
        std::cerr << "FATAL: sweep engine diverged from per-config "
                     "replay on "
                  << mismatches << "/" << spec.numConfigs()
                  << " configurations\n";
        std::exit(1);
    }

    // Parallel executor: the same work for two binaries (base + opt),
    // serial vs thread pool.
    std::vector<sim::SweepJob> jobs{
        {&base, nullptr, sim::StreamFilter::AppOnly, spec, "base"},
        {&opt, nullptr, sim::StreamFilter::AppOnly, spec, "opt"},
    };
    auto t3 = clock::now();
    auto serial_results = sim::runSweepJobs(s.buf, jobs, nullptr);
    auto t4 = clock::now();
    support::ThreadPool pool;
    auto parallel_results = sim::runSweepJobs(s.buf, jobs, &pool);
    auto t5 = clock::now();
    for (std::size_t j = 0; j < jobs.size(); ++j)
        for (std::uint32_t size : spec.size_bytes)
            for (std::uint32_t line : spec.line_bytes)
                if (serial_results[j].misses(size, line, 1) !=
                    parallel_results[j].misses(size, line, 1)) {
                    std::cerr << "FATAL: parallel executor diverged "
                                 "from serial sweep\n";
                    std::exit(1);
                }

    const double per_config_s = seconds(t0, t1);
    const double sweep_s = seconds(t1, t2);
    const double serial_jobs_s = seconds(t3, t4);
    const double parallel_jobs_s = seconds(t4, t5);
    const double speedup = per_config_s / sweep_s;
    const double parallel_speedup = serial_jobs_s / parallel_jobs_s;
    const double per_config_eps =
        static_cast<double>(line_accesses) / per_config_s;
    const double sweep_eps =
        static_cast<double>(line_accesses) / sweep_s;

    std::cout << "=== single-pass sweep engine vs per-config replay "
                 "===\n"
              << "trace events:        " << s.buf.size() << "\n"
              << "configurations:      " << spec.numConfigs()
              << " (direct-mapped, fig04 grid)\n"
              << "line accesses:       " << line_accesses << "\n"
              << "per-config replay:   " << per_config_s << " s ("
              << per_config_eps << " accesses/s)\n"
              << "single-pass sweep:   " << sweep_s << " s ("
              << sweep_eps << " accesses/s)\n"
              << "speedup:             " << speedup << "x\n"
              << "2-binary jobs serial:   " << serial_jobs_s << " s\n"
              << "2-binary jobs parallel: " << parallel_jobs_s << " s ("
              << pool.numThreads() << " threads)\n"
              << "parallel speedup:    " << parallel_speedup << "x\n"
              << "differential check:  PASS (miss counts "
                 "bit-identical)\n\n";

    std::ofstream json("BENCH_cachesim.json");
    json << "{\n"
         << "  \"bench\": \"cachesim\",\n"
         << "  \"trace_events\": " << s.buf.size() << ",\n"
         << "  \"configs\": " << spec.numConfigs() << ",\n"
         << "  \"line_accesses\": " << line_accesses << ",\n"
         << "  \"per_config_seconds\": " << per_config_s << ",\n"
         << "  \"per_config_accesses_per_sec\": " << per_config_eps
         << ",\n"
         << "  \"sweep_seconds\": " << sweep_s << ",\n"
         << "  \"sweep_accesses_per_sec\": " << sweep_eps << ",\n"
         << "  \"sweep_speedup\": " << speedup << ",\n"
         << "  \"jobs_serial_seconds\": " << serial_jobs_s << ",\n"
         << "  \"jobs_parallel_seconds\": " << parallel_jobs_s << ",\n"
         << "  \"parallel_threads\": " << pool.numThreads() << ",\n"
         << "  \"parallel_speedup\": " << parallel_speedup << ",\n"
         << "  \"differential_ok\": true\n"
         << "}\n";
    std::cout << "wrote BENCH_cachesim.json\n\n";
}

void
BM_RawCacheAccess(benchmark::State& state)
{
    mem::SetAssocCache cache(
        {64 * 1024, 64, static_cast<std::uint32_t>(state.range(0))});
    support::Pcg32 rng(bench::seedFromEnv(), kRawAccessStream);
    std::vector<std::uint64_t> addrs(1 << 16);
    for (auto& a : addrs)
        a = rng.nextBounded(256 * 1024);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 0xffff], mem::Owner::App).hit);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RawCacheAccess)->Arg(1)->Arg(4)->Arg(8);

void
BM_LineGranularReplay(benchmark::State& state)
{
    Shared& s = shared();
    core::Layout layout = layoutFor(core::OptCombo::Base);
    sim::Replayer rep(s.buf, layout);
    for (auto _ : state) {
        auto r = rep.icache({64 * 1024, 128, 1},
                            sim::StreamFilter::AppOnly);
        benchmark::DoNotOptimize(r.misses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(s.buf.size()));
}
BENCHMARK(BM_LineGranularReplay)->Unit(benchmark::kMillisecond);

void
BM_SinglePassSweep(benchmark::State& state)
{
    Shared& s = shared();
    core::Layout layout = layoutFor(core::OptCombo::Base);
    sim::Replayer rep(s.buf, layout);
    sim::SweepSpec spec = fig04Spec();
    for (auto _ : state) {
        auto r = rep.icacheSweep(spec, sim::StreamFilter::AppOnly);
        benchmark::DoNotOptimize(r.misses(64 * 1024, 128, 1));
    }
    // Items = configuration-evaluations (25 per pass).
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(spec.numConfigs()));
}
BENCHMARK(BM_SinglePassSweep)->Unit(benchmark::kMillisecond);

void
BM_WordGranularReplay(benchmark::State& state)
{
    Shared& s = shared();
    core::Layout layout = layoutFor(core::OptCombo::Base);
    sim::Replayer rep(s.buf, layout);
    for (auto _ : state) {
        auto r = rep.instrumented({128 * 1024, 128, 4},
                                  sim::StreamFilter::AppOnly);
        benchmark::DoNotOptimize(r.misses);
    }
}
BENCHMARK(BM_WordGranularReplay)->Unit(benchmark::kMillisecond);

void
BM_HierarchyReplay(benchmark::State& state)
{
    Shared& s = shared();
    core::Layout layout = layoutFor(core::OptCombo::Base);
    sim::Replayer rep(s.buf, layout);
    mem::HierarchyConfig config;
    for (auto _ : state) {
        auto r = rep.hierarchy(config);
        benchmark::DoNotOptimize(r.total.l1i.misses);
    }
}
BENCHMARK(BM_HierarchyReplay)->Unit(benchmark::kMillisecond);

void
BM_CfgWalk(benchmark::State& state)
{
    Shared& s = shared();
    synth::CfgWalker w(s.image.prog, trace::ImageId::App, 99);
    trace::NullSink sink;
    trace::ExecContext ctx;
    program::ProcId entry = s.image.entry("sql_exec_update");
    std::uint64_t instrs = 0;
    for (auto _ : state)
        instrs += w.run(entry, ctx, sink).instrs;
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_CfgWalk);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // google-benchmark owns the argv, so observability comes from the
    // environment (SPIKESIM_TRACE_OUT / SPIKESIM_MANIFEST_OUT /
    // SPIKESIM_PROGRESS).
    bench::ObsRun obs(bench::obsOptionsFromEnv(), argc, argv);
    runSweepComparison();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    obs.addArtifactFile("BENCH_cachesim.json");
    return 0;
}
