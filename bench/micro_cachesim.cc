/**
 * @file
 * google-benchmark microbenchmarks for the trace-replay and cache
 * simulation machinery (the inner loops of every figure sweep).
 */

#include <benchmark/benchmark.h>

#include "core/pipeline.hh"
#include "mem/cache.hh"
#include "sim/replay.hh"
#include "support/rng.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"

using namespace spikesim;

namespace {

/** Shared workload: image + profile + a modest trace. */
struct Shared
{
    synth::SyntheticProgram image;
    profile::Profile prof;
    trace::TraceBuffer buf;

    Shared()
        : image(synth::buildSyntheticProgram(
              synth::SynthParams::oracleLike())),
          prof(image.prog)
    {
        profile::ProfileRecorder rec(trace::ImageId::App, prof);
        trace::TeeSink tee({&rec, &buf});
        synth::CfgWalker w(image.prog, trace::ImageId::App, 1);
        trace::ExecContext ctx;
        for (int i = 0; i < 400; ++i) {
            w.run(image.entry("sql_exec_update"), ctx, tee);
            w.run(image.entry("txn_commit"), ctx, tee);
        }
    }
};

Shared&
shared()
{
    static Shared s;
    return s;
}

void
BM_RawCacheAccess(benchmark::State& state)
{
    mem::SetAssocCache cache(
        {64 * 1024, 64, static_cast<std::uint32_t>(state.range(0))});
    support::Pcg32 rng(7);
    std::vector<std::uint64_t> addrs(1 << 16);
    for (auto& a : addrs)
        a = rng.nextBounded(256 * 1024);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 0xffff], mem::Owner::App).hit);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RawCacheAccess)->Arg(1)->Arg(4)->Arg(8);

void
BM_LineGranularReplay(benchmark::State& state)
{
    Shared& s = shared();
    core::PipelineOptions opts;
    opts.combo = core::OptCombo::Base;
    core::Layout layout = core::buildLayout(s.image.prog, s.prof, opts);
    sim::Replayer rep(s.buf, layout);
    for (auto _ : state) {
        auto r = rep.icache({64 * 1024, 128, 1},
                            sim::StreamFilter::AppOnly);
        benchmark::DoNotOptimize(r.misses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(s.buf.size()));
}
BENCHMARK(BM_LineGranularReplay)->Unit(benchmark::kMillisecond);

void
BM_WordGranularReplay(benchmark::State& state)
{
    Shared& s = shared();
    core::PipelineOptions opts;
    opts.combo = core::OptCombo::Base;
    core::Layout layout = core::buildLayout(s.image.prog, s.prof, opts);
    sim::Replayer rep(s.buf, layout);
    for (auto _ : state) {
        auto r = rep.instrumented({128 * 1024, 128, 4},
                                  sim::StreamFilter::AppOnly);
        benchmark::DoNotOptimize(r.misses);
    }
}
BENCHMARK(BM_WordGranularReplay)->Unit(benchmark::kMillisecond);

void
BM_HierarchyReplay(benchmark::State& state)
{
    Shared& s = shared();
    core::PipelineOptions opts;
    opts.combo = core::OptCombo::Base;
    core::Layout layout = core::buildLayout(s.image.prog, s.prof, opts);
    sim::Replayer rep(s.buf, layout);
    mem::HierarchyConfig config;
    for (auto _ : state) {
        auto r = rep.hierarchy(config);
        benchmark::DoNotOptimize(r.total.l1i_misses);
    }
}
BENCHMARK(BM_HierarchyReplay)->Unit(benchmark::kMillisecond);

void
BM_CfgWalk(benchmark::State& state)
{
    Shared& s = shared();
    synth::CfgWalker w(s.image.prog, trace::ImageId::App, 99);
    trace::NullSink sink;
    trace::ExecContext ctx;
    program::ProcId entry = s.image.entry("sql_exec_update");
    std::uint64_t instrs = 0;
    for (auto _ : state)
        instrs += w.run(entry, ctx, sink).instrs;
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_CfgWalk);

} // namespace

BENCHMARK_MAIN();
