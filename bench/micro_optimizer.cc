/**
 * @file
 * google-benchmark microbenchmarks for the optimizer itself: chaining,
 * fine-grain splitting, Pettis-Hansen ordering, and full pipeline
 * throughput on the Oracle-like image.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "core/chain.hh"
#include "core/pipeline.hh"
#include "core/split.hh"
#include "opt/exttsp.hh"
#include "opt/search.hh"
#include "profile/profile.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"

using namespace spikesim;

namespace {

/** Shared, lazily built workload (image + profile). */
struct Shared
{
    synth::SyntheticProgram image;
    profile::Profile prof;

    Shared()
        : image(synth::buildSyntheticProgram(
              synth::SynthParams::oracleLike())),
          prof(image.prog)
    {
        profile::ProfileRecorder rec(trace::ImageId::App, prof);
        synth::CfgWalker w(image.prog, trace::ImageId::App, 1);
        trace::ExecContext ctx;
        std::vector<int> hints{2};
        for (int i = 0; i < 200; ++i) {
            w.run(image.entry("sql_exec_update"), ctx, rec);
            w.run(image.entry("btree_search"), ctx, rec,
                  {hints.data(), hints.size()});
            w.run(image.entry("log_append"), ctx, rec,
                  {hints.data(), hints.size()});
        }
    }
};

Shared&
shared()
{
    static Shared s;
    return s;
}

void
BM_ChainAllProcs(benchmark::State& state)
{
    Shared& s = shared();
    for (auto _ : state) {
        std::uint64_t blocks = 0;
        for (program::ProcId p = 0; p < s.image.prog.numProcs(); ++p)
            blocks += core::chainBasicBlocks(s.image.prog, p, s.prof)
                          .size();
        benchmark::DoNotOptimize(blocks);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(s.image.prog.numBlocks()));
}
BENCHMARK(BM_ChainAllProcs)->Unit(benchmark::kMillisecond);

void
BM_FullPipeline(benchmark::State& state)
{
    Shared& s = shared();
    core::PipelineOptions opts;
    opts.combo = static_cast<core::OptCombo>(state.range(0));
    for (auto _ : state) {
        core::Layout layout =
            core::buildLayout(s.image.prog, s.prof, opts);
        benchmark::DoNotOptimize(layout.textBytes());
    }
    state.SetLabel(core::comboName(opts.combo));
}
BENCHMARK(BM_FullPipeline)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

void
BM_SegmentGraph(benchmark::State& state)
{
    Shared& s = shared();
    // Pre-split everything once.
    std::vector<core::CodeSegment> segs;
    for (program::ProcId p = 0; p < s.image.prog.numProcs(); ++p) {
        auto order = core::chainBasicBlocks(s.image.prog, p, s.prof);
        auto pieces = core::splitFineGrain(s.image.prog, p, order);
        for (auto& seg : pieces)
            segs.push_back(std::move(seg));
    }
    for (auto _ : state) {
        core::SegmentGraph g =
            core::buildSegmentGraph(s.image.prog, s.prof, segs);
        benchmark::DoNotOptimize(g.edges.size());
    }
}
BENCHMARK(BM_SegmentGraph)->Unit(benchmark::kMillisecond);

void
BM_ExtTspScore(benchmark::State& state)
{
    Shared& s = shared();
    core::PipelineOptions opts;
    opts.combo = core::OptCombo::All;
    core::Layout layout = core::buildLayout(s.image.prog, s.prof, opts);
    opt::ExtTspParams params;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            opt::extTspScore(layout, s.prof, params));
    // Items = profiled edges scored per pass.
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(s.prof.edges().size()));
}
BENCHMARK(BM_ExtTspScore)->Unit(benchmark::kMillisecond);

void
BM_AnnealEpoch(benchmark::State& state)
{
    Shared& s = shared();
    core::PipelineOptions popts;
    popts.combo = core::OptCombo::All;
    opt::SearchOptions sopts;
    sopts.epochs = 1;
    sopts.batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        opt::SearchResult r =
            opt::searchLayout(s.image.prog, s.prof, popts, sopts);
        benchmark::DoNotOptimize(r.best_score);
    }
    // Items = candidate evaluations (proxy scores) per epoch.
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sopts.batch));
}
BENCHMARK(BM_AnnealEpoch)->Arg(24)->Unit(benchmark::kMillisecond);

void
BM_SynthesizeImage(benchmark::State& state)
{
    for (auto _ : state) {
        synth::SyntheticProgram sp = synth::buildSyntheticProgram(
            synth::SynthParams::oracleLike(42));
        benchmark::DoNotOptimize(sp.prog.numBlocks());
    }
}
BENCHMARK(BM_SynthesizeImage)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // google-benchmark owns the argv, so observability comes from the
    // environment (SPIKESIM_TRACE_OUT / SPIKESIM_MANIFEST_OUT /
    // SPIKESIM_PROGRESS).
    bench::ObsRun obs(bench::obsOptionsFromEnv(), argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
