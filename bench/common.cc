#include "bench/common.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <vector>

#include "sim/corpus.hh"
#include "support/panic.hh"

namespace spikesim::bench {

namespace {

[[noreturn]] void
usage(const char* argv0, const std::string& complaint)
{
    support::fatal(complaint + "\nusage: " + argv0 +
                   " [--corpus DIR] [profile_txns] [trace_txns]");
}

/** Strict decimal parse; rejects sign, junk, and overflow. */
std::uint64_t
parseTxnCount(const char* argv0, const std::string& arg, const char* what)
{
    if (arg.empty())
        usage(argv0, std::string(what) + " is empty");
    if (arg[0] == '-' || arg[0] == '+')
        usage(argv0, std::string(what) + " must be a non-negative "
                                         "integer, got '" + arg + "'");
    for (char c : arg)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            usage(argv0, std::string(what) + " is not a number: '" +
                             arg + "'");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(arg.c_str(), &end, 10);
    if (errno == ERANGE || end != arg.c_str() + arg.size())
        usage(argv0, std::string(what) + " is out of range: '" + arg +
                         "'");
    return v;
}

bool
envFlagSet(const char* name)
{
    const char* v = std::getenv(name);
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

} // namespace

Workload
runWorkload(int argc, char** argv, std::uint64_t profile_txns,
            std::uint64_t trace_txns)
{
    std::string corpus_dir;
    if (const char* env = std::getenv("SPIKESIM_CORPUS_DIR"))
        corpus_dir = env;

    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--corpus") {
            if (i + 1 >= argc)
                usage(argv[0], "--corpus needs a directory argument");
            corpus_dir = argv[++i];
        } else if (arg.rfind("--corpus=", 0) == 0) {
            corpus_dir = arg.substr(9);
        } else if (arg.size() > 1 && arg[0] == '-' &&
                   !std::isdigit(static_cast<unsigned char>(arg[1]))) {
            usage(argv[0], "unknown option '" + arg + "'");
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() > 2)
        usage(argv[0], "too many arguments");
    if (positional.size() > 0)
        profile_txns =
            parseTxnCount(argv[0], positional[0], "profile_txns");
    if (positional.size() > 1)
        trace_txns = parseTxnCount(argv[0], positional[1], "trace_txns");

    sim::CorpusParams params;
    params.profile_txns = profile_txns;
    params.trace_txns = trace_txns;

    sim::GeneratedWorkload g;
    if (corpus_dir.empty()) {
        g = sim::generateWorkload(params, &std::cerr);
    } else {
        g = sim::loadOrCapture(params, corpus_dir, &std::cerr);
        if (envFlagSet("SPIKESIM_CORPUS_VERIFY"))
            sim::verifyCorpusAgainstFresh(params, *g.profiles, g.buf,
                                          &std::cerr);
    }

    Workload w;
    w.system = std::move(g.system);
    w.profiles = std::move(g.profiles);
    w.buf = std::move(g.buf);
    w.profile_txns = profile_txns;
    w.trace_txns = trace_txns;
    w.db_ready = g.db_ready;
    return w;
}

void
banner(const std::string& figure, const std::string& what)
{
    std::cout << "=== " << figure << ": " << what << " ===\n"
              << "(Ramirez et al., ISCA 2001 -- spikesim reproduction)\n\n";
}

void
paperVsMeasured(const std::string& metric, const std::string& paper,
                const std::string& measured)
{
    std::cout << "  " << metric << "\n    paper:    " << paper
              << "\n    measured: " << measured << "\n";
}

} // namespace spikesim::bench
