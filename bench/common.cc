#include "bench/common.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <vector>

#include "sim/corpus.hh"
#include "support/panic.hh"

namespace spikesim::bench {

namespace {

[[noreturn]] void
usage(const char* argv0, const std::string& complaint)
{
    support::fatal(complaint + "\nusage: " + argv0 +
                   " [--corpus DIR] [--threads N] [--seed N]"
                   " [profile_txns] [trace_txns]");
}

/** Strict decimal parse; rejects sign, junk, and overflow. */
std::uint64_t
parseTxnCount(const char* argv0, const std::string& arg, const char* what)
{
    if (arg.empty())
        usage(argv0, std::string(what) + " is empty");
    if (arg[0] == '-' || arg[0] == '+')
        usage(argv0, std::string(what) + " must be a non-negative "
                                         "integer, got '" + arg + "'");
    for (char c : arg)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            usage(argv0, std::string(what) + " is not a number: '" +
                             arg + "'");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(arg.c_str(), &end, 10);
    if (errno == ERANGE || end != arg.c_str() + arg.size())
        usage(argv0, std::string(what) + " is out of range: '" + arg +
                         "'");
    return v;
}

bool
envFlagSet(const char* name)
{
    const char* v = std::getenv(name);
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/** Strict thread-count parse: 0 (serial oracle) .. 4096. */
int
parseThreads(const char* argv0, const std::string& arg)
{
    const std::uint64_t v = parseTxnCount(argv0, arg, "thread count");
    if (v > 4096)
        usage(argv0, "thread count is out of range: '" + arg + "'");
    return static_cast<int>(v);
}

} // namespace

int
threadsFromEnv()
{
    const char* v = std::getenv("SPIKESIM_THREADS");
    if (v == nullptr || *v == '\0')
        return support::ThreadPool::defaultThreads();
    return parseThreads("SPIKESIM_THREADS", v);
}

std::uint64_t
seedFromEnv(std::uint64_t fallback)
{
    const char* v = std::getenv("SPIKESIM_SEED");
    if (v == nullptr || *v == '\0')
        return fallback;
    return parseTxnCount("SPIKESIM_SEED", v, "seed");
}

Workload
runWorkload(int argc, char** argv, std::uint64_t profile_txns,
            std::uint64_t trace_txns)
{
    std::string corpus_dir;
    if (const char* env = std::getenv("SPIKESIM_CORPUS_DIR"))
        corpus_dir = env;

    int threads = -1; // unset: SPIKESIM_THREADS, then hardware
    bool seed_set = false;
    std::uint64_t seed = kDefaultSeed;

    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--corpus") {
            if (i + 1 >= argc)
                usage(argv[0], "--corpus needs a directory argument");
            corpus_dir = argv[++i];
        } else if (arg.rfind("--corpus=", 0) == 0) {
            corpus_dir = arg.substr(9);
        } else if (arg == "--threads") {
            if (i + 1 >= argc)
                usage(argv[0], "--threads needs a count argument");
            threads = parseThreads(argv[0], argv[++i]);
        } else if (arg.rfind("--threads=", 0) == 0) {
            threads = parseThreads(argv[0], arg.substr(10));
        } else if (arg == "--seed") {
            if (i + 1 >= argc)
                usage(argv[0], "--seed needs a value argument");
            seed = parseTxnCount(argv[0], argv[++i], "seed");
            seed_set = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            seed = parseTxnCount(argv[0], arg.substr(7), "seed");
            seed_set = true;
        } else if (arg.size() > 1 && arg[0] == '-' &&
                   !std::isdigit(static_cast<unsigned char>(arg[1]))) {
            usage(argv[0], "unknown option '" + arg + "'");
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() > 2)
        usage(argv[0], "too many arguments");
    if (positional.size() > 0)
        profile_txns =
            parseTxnCount(argv[0], positional[0], "profile_txns");
    if (positional.size() > 1)
        trace_txns = parseTxnCount(argv[0], positional[1], "trace_txns");

    sim::CorpusParams params;
    params.profile_txns = profile_txns;
    params.trace_txns = trace_txns;

    sim::GeneratedWorkload g;
    if (corpus_dir.empty()) {
        g = sim::generateWorkload(params, &std::cerr);
    } else {
        g = sim::loadOrCapture(params, corpus_dir, &std::cerr);
        if (envFlagSet("SPIKESIM_CORPUS_VERIFY"))
            sim::verifyCorpusAgainstFresh(params, *g.profiles, g.buf,
                                          &std::cerr);
    }

    Workload w;
    w.system = std::move(g.system);
    w.profiles = std::move(g.profiles);
    w.buf = std::move(g.buf);
    w.profile_txns = profile_txns;
    w.trace_txns = trace_txns;
    w.db_ready = g.db_ready;
    w.threads = threads >= 0 ? threads : threadsFromEnv();
    w.seed = seed_set ? seed : seedFromEnv();
    if (w.threads > 0)
        w.worker_pool =
            std::make_unique<support::ThreadPool>(w.threads);
    return w;
}

const sim::ResolvedTrace&
BenchReplay::resolved(sim::StreamFilter filter, bool include_data)
{
    const auto key =
        std::make_pair(static_cast<int>(filter), include_data);
    auto it = resolved_.find(key);
    if (it == resolved_.end())
        it = resolved_
                 .emplace(key, rep_.resolve(filter, include_data))
                 .first;
    return it->second;
}

sim::ICacheReplayResult
BenchReplay::icache(const mem::CacheConfig& config,
                    sim::StreamFilter filter)
{
    if (!parallel_)
        return rep_.icache(config, filter);
    return sim::replayICache(resolved(filter, false), {&config, 1},
                             pool_)[0];
}

std::vector<sim::ICacheReplayResult>
BenchReplay::icacheColumn(std::span<const mem::CacheConfig> configs,
                          sim::StreamFilter filter)
{
    if (!parallel_) {
        std::vector<sim::ICacheReplayResult> out;
        out.reserve(configs.size());
        for (const mem::CacheConfig& config : configs)
            out.push_back(rep_.icache(config, filter));
        return out;
    }
    return sim::replayICache(resolved(filter, false), configs, pool_);
}

mem::ThreeCStats
BenchReplay::threeCs(const mem::CacheConfig& config,
                     sim::StreamFilter filter)
{
    if (!parallel_)
        return rep_.threeCs(config, filter);
    return sim::replayThreeCs(resolved(filter, false), {&config, 1},
                              pool_)[0];
}

std::vector<mem::ThreeCStats>
BenchReplay::threeCsColumn(std::span<const mem::CacheConfig> configs,
                           sim::StreamFilter filter)
{
    if (!parallel_) {
        std::vector<mem::ThreeCStats> out;
        out.reserve(configs.size());
        for (const mem::CacheConfig& config : configs)
            out.push_back(rep_.threeCs(config, filter));
        return out;
    }
    return sim::replayThreeCs(resolved(filter, false), configs, pool_);
}

mem::StreamBufferStats
BenchReplay::streamBuffer(const mem::CacheConfig& config, int num_buffers,
                          sim::StreamFilter filter)
{
    if (!parallel_)
        return rep_.streamBuffer(config, num_buffers, filter);
    return sim::replayStreamBuffer(resolved(filter, false), {&config, 1},
                                   num_buffers, pool_)[0];
}

sim::WordStats
BenchReplay::instrumented(const mem::CacheConfig& config,
                          sim::StreamFilter filter, bool flush_at_end)
{
    if (!parallel_)
        return rep_.instrumented(config, filter, flush_at_end);
    return sim::replayInstrumented(resolved(filter, false), {&config, 1},
                                   flush_at_end, pool_)[0];
}

sim::ITlbReplayResult
BenchReplay::itlb(const sim::ITlbSpec& spec, sim::StreamFilter filter)
{
    if (!parallel_)
        return rep_.itlb(spec, filter);
    return sim::replayITlb(resolved(filter, false), {&spec, 1},
                           pool_)[0];
}

sim::HierarchyReplayResult
BenchReplay::hierarchy(const mem::HierarchyConfig& config,
                       bool include_data, bool model_coherence)
{
    if (!parallel_)
        return rep_.hierarchy(config, include_data, model_coherence);
    return sim::replayHierarchy(
        resolved(sim::StreamFilter::Combined, include_data), {&config, 1},
        model_coherence, pool_)[0];
}

std::vector<sim::HierarchyReplayResult>
BenchReplay::hierarchyColumn(std::span<const mem::HierarchyConfig> configs,
                             bool include_data, bool model_coherence)
{
    if (!parallel_) {
        std::vector<sim::HierarchyReplayResult> out;
        out.reserve(configs.size());
        for (const mem::HierarchyConfig& config : configs)
            out.push_back(
                rep_.hierarchy(config, include_data, model_coherence));
        return out;
    }
    return sim::replayHierarchy(
        resolved(sim::StreamFilter::Combined, include_data), configs,
        model_coherence, pool_);
}

metrics::SequenceStats
BenchReplay::sequence(sim::StreamFilter filter)
{
    if (!parallel_) {
        // The scalar oracle takes one image and the layout that maps
        // it; Combined has no oracle form (two layouts, one stream).
        SPIKESIM_ASSERT(filter != sim::StreamFilter::Combined,
                        "sequence() needs a single-image filter");
        return filter == sim::StreamFilter::AppOnly
                   ? metrics::sequenceLengths(rep_.trace(), rep_.app(),
                                              trace::ImageId::App)
                   : metrics::sequenceLengths(rep_.trace(),
                                              *rep_.kernel(),
                                              trace::ImageId::Kernel);
    }
    return sim::replaySequence(resolved(filter, false), pool_);
}

std::uint64_t
BenchReplay::dynamicInstrs(sim::StreamFilter filter)
{
    if (!parallel_)
        return rep_.dynamicInstrs(filter);
    return resolved(filter, false).instrs;
}

void
banner(const std::string& figure, const std::string& what)
{
    std::cout << "=== " << figure << ": " << what << " ===\n"
              << "(Ramirez et al., ISCA 2001 -- spikesim reproduction)\n\n";
}

void
paperVsMeasured(const std::string& metric, const std::string& paper,
                const std::string& measured)
{
    std::cout << "  " << metric << "\n    paper:    " << paper
              << "\n    measured: " << measured << "\n";
}

} // namespace spikesim::bench
