#include "bench/common.hh"

#include <cstdlib>

namespace spikesim::bench {

Workload
runWorkload(int argc, char** argv, std::uint64_t profile_txns,
            std::uint64_t trace_txns)
{
    Workload w;
    if (argc > 1)
        profile_txns = static_cast<std::uint64_t>(std::atoll(argv[1]));
    if (argc > 2)
        trace_txns = static_cast<std::uint64_t>(std::atoll(argv[2]));
    w.profile_txns = profile_txns;
    w.trace_txns = trace_txns;

    sim::SystemConfig config;
    w.system = std::make_unique<sim::System>(config);
    std::cerr << "[workload] loading database ("
              << w.system->database().numAccounts() << " accounts)...\n";
    w.system->setup();
    std::cerr << "[workload] warmup + profiling " << profile_txns
              << " transactions...\n";
    w.system->warmup(50);
    w.profiles = w.system->collectProfiles(profile_txns);
    std::cerr << "[workload] tracing " << trace_txns
              << " transactions...\n";
    w.system->run(trace_txns, w.buf);
    std::cerr << "[workload] trace: " << w.buf.size() << " events ("
              << w.buf.imageEvents(trace::ImageId::Kernel)
              << " kernel, " << w.buf.imageEvents(trace::ImageId::Data)
              << " data)\n\n";
    return w;
}

void
banner(const std::string& figure, const std::string& what)
{
    std::cout << "=== " << figure << ": " << what << " ===\n"
              << "(Ramirez et al., ISCA 2001 -- spikesim reproduction)\n\n";
}

void
paperVsMeasured(const std::string& metric, const std::string& paper,
                const std::string& measured)
{
    std::cout << "  " << metric << "\n    paper:    " << paper
              << "\n    measured: " << measured << "\n";
}

} // namespace spikesim::bench
