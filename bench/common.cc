#include "bench/common.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/corpus.hh"
#include "support/panic.hh"

namespace spikesim::bench {

namespace {

[[noreturn]] void
usage(const char* argv0, const std::string& complaint)
{
    support::fatal(complaint + "\nusage: " + argv0 +
                   " [--corpus DIR] [--threads N] [--seed N]"
                   " [--simd 0|1|2] [--trace-out FILE]"
                   " [--manifest-out FILE] [--timeline-out FILE]"
                   " [--progress SECS]"
                   " [profile_txns] [trace_txns]");
}

/** Strict decimal parse; rejects sign, junk, and overflow. */
std::uint64_t
parseTxnCount(const char* argv0, const std::string& arg, const char* what)
{
    if (arg.empty())
        usage(argv0, std::string(what) + " is empty");
    if (arg[0] == '-' || arg[0] == '+')
        usage(argv0, std::string(what) + " must be a non-negative "
                                         "integer, got '" + arg + "'");
    for (char c : arg)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            usage(argv0, std::string(what) + " is not a number: '" +
                             arg + "'");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(arg.c_str(), &end, 10);
    if (errno == ERANGE || end != arg.c_str() + arg.size())
        usage(argv0, std::string(what) + " is out of range: '" + arg +
                         "'");
    return v;
}

bool
envFlagSet(const char* name)
{
    const char* v = std::getenv(name);
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/** Strict thread-count parse: 0 (serial oracle) .. 4096. */
int
parseThreads(const char* argv0, const std::string& arg)
{
    const std::uint64_t v = parseTxnCount(argv0, arg, "thread count");
    if (v > 4096)
        usage(argv0, "thread count is out of range: '" + arg + "'");
    return static_cast<int>(v);
}

/** Strict positive-seconds parse for `--progress`. */
double
parseSeconds(const char* argv0, const std::string& arg)
{
    if (arg.empty())
        usage(argv0, "--progress needs a period in seconds");
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(arg.c_str(), &end);
    if (errno == ERANGE || end != arg.c_str() + arg.size() ||
        !std::isfinite(v) || v <= 0.0)
        usage(argv0, "--progress period must be a positive number of "
                     "seconds, got '" + arg + "'");
    return v;
}

/** A flag value that must be a non-empty file path. */
std::string
parsePath(const char* argv0, const std::string& arg, const char* flag)
{
    if (arg.empty())
        usage(argv0, std::string(flag) + " needs a file path");
    return arg;
}

/** Strict `--simd` parse: exactly "0" (scalar), "1" (AVX2), or "2"
 *  (AVX-512). */
sim::SimdMode
parseSimd(const char* argv0, const std::string& arg)
{
    if (arg == "0")
        return sim::SimdMode::Scalar;
    if (arg == "1")
        return sim::SimdMode::Simd;
    if (arg == "2")
        return sim::SimdMode::Avx512;
    usage(argv0, "--simd must be 0, 1 or 2, got '" + arg + "'");
}

/** Format a double with fixed precision for manifest info fields. */
std::string
fmtRate(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
}

} // namespace

ObsOptions
obsOptionsFromEnv()
{
    ObsOptions o;
    if (const char* v = std::getenv("SPIKESIM_TRACE_OUT");
        v != nullptr && *v != '\0')
        o.trace_out = v;
    if (const char* v = std::getenv("SPIKESIM_MANIFEST_OUT");
        v != nullptr && *v != '\0')
        o.manifest_out = v;
    if (const char* v = std::getenv("SPIKESIM_TIMELINE_OUT");
        v != nullptr && *v != '\0')
        o.timeline_out = v;
    if (const char* v = std::getenv("SPIKESIM_PROGRESS");
        v != nullptr && *v != '\0')
        o.progress_s = parseSeconds("SPIKESIM_PROGRESS", v);
    return o;
}

ObsRun::ObsRun(ObsOptions opts, int argc, char** argv)
    : opts_(std::move(opts)),
      perf_(std::make_unique<obs::PerfCounters>())
{
    if (argc > 0)
        manifest_.binary = argv[0];
    for (int i = 1; i < argc; ++i)
        manifest_.args.emplace_back(argv[i]);
    if (!opts_.trace_out.empty())
        obs::startTracing();
    // Start hardware counters before any worker pool exists: the fds
    // are inherit-enabled, so threads spawned from here on are counted.
    perf_->start();
    if (opts_.progress_s > 0.0)
        progress_ = std::make_unique<obs::ProgressMeter>(opts_.progress_s,
                                                         std::cerr);
}

ObsRun::~ObsRun()
{
    finish();
}

void
ObsRun::addArtifact(std::string name, std::string json)
{
    manifest_.artifacts.push_back(
        {std::move(name), std::move(json)});
}

void
ObsRun::addArtifactFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::cerr << "[obs] warning: cannot read artifact " << path
                  << "; not embedded in the manifest\n";
        return;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    addArtifact(std::filesystem::path(path).filename().string(),
                buf.str());
}

void
ObsRun::addTimeline(const obs::Timeline& tl)
{
    timelines_.push_back(tl);
    manifest_.timelines.push_back(tl.renderSection());
}

void
ObsRun::addSloVerdict(const obs::SloSpec& spec, const obs::SloVerdict& v)
{
    manifest_.slos.push_back(obs::renderSloVerdict(spec, v));
}

void
ObsRun::finish()
{
    if (finished_)
        return;
    finished_ = true;
    progress_.reset(); // join the heartbeat before flushing anything

    // Hardware self-profile: fold the run's counters into the registry
    // (perf.* gauges land in the manifest's metrics snapshot too) and
    // the manifest's info block. Unavailable perf records the reason
    // and nothing else — the run is never degraded by it.
    {
        obs::Span span("perf.sample", "obs");
        perf_->stop();
        const obs::PerfSample s = perf_->sample();
        manifest_.info.emplace_back("perf.available",
                                    s.available ? "1" : "0");
        if (!perf_->available())
            manifest_.info.emplace_back("perf.reason", perf_->reason());
        const auto count = [&](const char* name,
                               const obs::PerfSample::Value& v) {
            if (!v.ok)
                return;
            const auto n = static_cast<std::int64_t>(std::llround(
                v.count));
            obs::gauge(name).set(n);
            manifest_.info.emplace_back(name, std::to_string(n));
        };
        count("perf.cycles", s.cycles);
        count("perf.instructions", s.instructions);
        count("perf.branches", s.branches);
        count("perf.branch_misses", s.branch_misses);
        count("perf.stalled_cycles_frontend", s.stalled_frontend);
        count("perf.l1i_misses", s.l1i_misses);
        count("perf.l1d_misses", s.l1d_misses);
        count("perf.itlb_misses", s.itlb_misses);
        if (s.available) {
            manifest_.info.emplace_back("perf.ipc", fmtRate(s.ipc()));
            manifest_.info.emplace_back("perf.branch_miss_pct",
                                        fmtRate(s.branchMissPct()));
            manifest_.info.emplace_back("perf.l1i_mpki",
                                        fmtRate(s.l1iMpki()));
            manifest_.info.emplace_back("perf.l1d_mpki",
                                        fmtRate(s.l1dMpki()));
            manifest_.info.emplace_back("perf.itlb_mpki",
                                        fmtRate(s.itlbMpki()));
            manifest_.info.emplace_back(
                "perf.frontend_bound_pct",
                fmtRate(s.frontendBoundPct()));
        }
    }

    if (!opts_.trace_out.empty()) {
        obs::stopTracing(opts_.trace_out);
        std::cerr << "[obs] wrote trace to " << opts_.trace_out << "\n";
    }
    if (!opts_.timeline_out.empty()) {
        obs::writeTimelineTrace(timelines_, opts_.timeline_out);
        std::cerr << "[obs] wrote timeline trace ("
                  << timelines_.size() << " timelines) to "
                  << opts_.timeline_out << "\n";
    }
    if (!opts_.manifest_out.empty()) {
        obs::writeManifest(manifest_, opts_.manifest_out);
        std::cerr << "[obs] wrote manifest to " << opts_.manifest_out
                  << "\n";
    }
}

int
threadsFromEnv()
{
    const char* v = std::getenv("SPIKESIM_THREADS");
    if (v == nullptr || *v == '\0')
        return support::ThreadPool::defaultThreads();
    return parseThreads("SPIKESIM_THREADS", v);
}

std::uint64_t
seedFromEnv(std::uint64_t fallback)
{
    const char* v = std::getenv("SPIKESIM_SEED");
    if (v == nullptr || *v == '\0')
        return fallback;
    return parseTxnCount("SPIKESIM_SEED", v, "seed");
}

Workload
runWorkload(int argc, char** argv, std::uint64_t profile_txns,
            std::uint64_t trace_txns)
{
    std::string corpus_dir;
    if (const char* env = std::getenv("SPIKESIM_CORPUS_DIR"))
        corpus_dir = env;

    int threads = -1; // unset: SPIKESIM_THREADS, then hardware
    bool seed_set = false;
    std::uint64_t seed = kDefaultSeed;
    sim::SimdMode simd = sim::SimdMode::Auto;
    ObsOptions oopts = obsOptionsFromEnv(); // flags below win

    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--corpus") {
            if (i + 1 >= argc)
                usage(argv[0], "--corpus needs a directory argument");
            corpus_dir = argv[++i];
        } else if (arg.rfind("--corpus=", 0) == 0) {
            corpus_dir = arg.substr(9);
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc)
                usage(argv[0], "--trace-out needs a file path");
            oopts.trace_out =
                parsePath(argv[0], argv[++i], "--trace-out");
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            oopts.trace_out =
                parsePath(argv[0], arg.substr(12), "--trace-out");
        } else if (arg == "--manifest-out") {
            if (i + 1 >= argc)
                usage(argv[0], "--manifest-out needs a file path");
            oopts.manifest_out =
                parsePath(argv[0], argv[++i], "--manifest-out");
        } else if (arg.rfind("--manifest-out=", 0) == 0) {
            oopts.manifest_out =
                parsePath(argv[0], arg.substr(15), "--manifest-out");
        } else if (arg == "--timeline-out") {
            if (i + 1 >= argc)
                usage(argv[0], "--timeline-out needs a file path");
            oopts.timeline_out =
                parsePath(argv[0], argv[++i], "--timeline-out");
        } else if (arg.rfind("--timeline-out=", 0) == 0) {
            oopts.timeline_out =
                parsePath(argv[0], arg.substr(15), "--timeline-out");
        } else if (arg == "--progress") {
            if (i + 1 >= argc)
                usage(argv[0], "--progress needs a period in seconds");
            oopts.progress_s = parseSeconds(argv[0], argv[++i]);
        } else if (arg.rfind("--progress=", 0) == 0) {
            oopts.progress_s = parseSeconds(argv[0], arg.substr(11));
        } else if (arg == "--threads") {
            if (i + 1 >= argc)
                usage(argv[0], "--threads needs a count argument");
            threads = parseThreads(argv[0], argv[++i]);
        } else if (arg.rfind("--threads=", 0) == 0) {
            threads = parseThreads(argv[0], arg.substr(10));
        } else if (arg == "--seed") {
            if (i + 1 >= argc)
                usage(argv[0], "--seed needs a value argument");
            seed = parseTxnCount(argv[0], argv[++i], "seed");
            seed_set = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            seed = parseTxnCount(argv[0], arg.substr(7), "seed");
            seed_set = true;
        } else if (arg == "--simd") {
            if (i + 1 >= argc)
                usage(argv[0], "--simd needs a 0|1|2 argument");
            simd = parseSimd(argv[0], argv[++i]);
        } else if (arg.rfind("--simd=", 0) == 0) {
            simd = parseSimd(argv[0], arg.substr(7));
        } else if (arg.size() > 1 && arg[0] == '-' &&
                   !std::isdigit(static_cast<unsigned char>(arg[1]))) {
            usage(argv[0], "unknown option '" + arg + "'");
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() > 2)
        usage(argv[0], "too many arguments");
    if (positional.size() > 0)
        profile_txns =
            parseTxnCount(argv[0], positional[0], "profile_txns");
    if (positional.size() > 1)
        trace_txns = parseTxnCount(argv[0], positional[1], "trace_txns");

    sim::CorpusParams params;
    params.profile_txns = profile_txns;
    params.trace_txns = trace_txns;

    Workload w;
    if (oopts.active())
        w.obs_run = std::make_unique<ObsRun>(std::move(oopts), argc,
                                             argv);

    sim::GeneratedWorkload g;
    {
        std::optional<obs::PhaseClock> phase;
        if (w.obs_run)
            phase.emplace(w.obs_run->manifest(), "workload");
        if (corpus_dir.empty()) {
            g = sim::generateWorkload(params, &std::cerr);
        } else {
            g = sim::loadOrCapture(params, corpus_dir, &std::cerr);
            if (envFlagSet("SPIKESIM_CORPUS_VERIFY"))
                sim::verifyCorpusAgainstFresh(params, *g.profiles, g.buf,
                                              &std::cerr);
        }
    }

    w.system = std::move(g.system);
    w.profiles = std::move(g.profiles);
    w.buf = std::move(g.buf);
    w.profile_txns = profile_txns;
    w.trace_txns = trace_txns;
    w.db_ready = g.db_ready;
    w.threads = threads >= 0 ? threads : threadsFromEnv();
    w.seed = seed_set ? seed : seedFromEnv();
    w.simd = simd;
    // When Auto-mode calibration is going to run (no --simd flag, no
    // SPIKESIM_SIMD, at least one vector kernel runnable), ground it on
    // a slice of the real resolved trace instead of the synthetic one:
    // the synthetic trace's fetch-run shape has picked AVX-512 on hosts
    // where AVX2 measures faster on the actual workload. The baseline
    // layouts are the cheapest resolvable pair and the slice only has
    // to be representative of run shape, not of layout quality.
    if (w.simd == sim::SimdMode::Auto &&
        sim::simdModeFromEnv() == sim::SimdMode::Auto &&
        (sim::simdAvailable() || sim::avx512Available()) &&
        w.buf.events().size() > 0) {
        const core::Layout app = w.appLayout(core::OptCombo::Base);
        const core::Layout kernel = w.kernelLayout();
        const sim::Replayer rep(w.buf, app, &kernel);
        sim::seedCalibrationTrace(
            rep.resolveSoA(sim::StreamFilter::Combined));
    }
    // Resolve eagerly: a forced-but-unavailable --simd 1|2 must fail
    // here, before any replay silently runs scalar. In Auto mode this
    // also runs (and caches) the startup calibration, so the choice
    // and its reason are known before the first replay.
    const sim::KernelChoice choice = sim::resolveKernel(w.simd);
    if (w.threads > 0)
        w.worker_pool =
            std::make_unique<support::ThreadPool>(w.threads);

    if (w.obs_run) {
        obs::Manifest& m = w.obs_run->manifest();
        m.seed = w.seed;
        m.threads = static_cast<std::size_t>(w.threads);
        m.info.emplace_back("profile_txns",
                            std::to_string(profile_txns));
        m.info.emplace_back("trace_txns", std::to_string(trace_txns));
        m.info.emplace_back("simd_kernel",
                            sim::kernelName(choice.kind));
        m.info.emplace_back("simd_kernel_reason", choice.reason);
        const sim::CalibrationInfo calib = sim::calibrationInfo();
        if (calib.ran) {
            m.info.emplace_back("calibration_source", calib.source);
            m.info.emplace_back("calibration_sample_refs",
                                std::to_string(calib.sample_refs));
        }
        if (!corpus_dir.empty())
            m.info.emplace_back("corpus_dir", corpus_dir);
    }
    return w;
}

const sim::ResolvedTraceSoA&
BenchReplay::resolved(sim::StreamFilter filter, bool include_data)
{
    const auto key =
        std::make_pair(static_cast<int>(filter), include_data);
    auto it = resolved_.find(key);
    if (it == resolved_.end())
        it = resolved_
                 .emplace(key, rep_.resolveSoA(filter, include_data))
                 .first;
    return it->second;
}

sim::ICacheReplayResult
BenchReplay::icache(const mem::CacheConfig& config,
                    sim::StreamFilter filter)
{
    if (!parallel_)
        return rep_.icache(config, filter);
    return sim::replayICache(resolved(filter, false), {&config, 1},
                             simd_, pool_)[0];
}

std::vector<sim::ICacheReplayResult>
BenchReplay::icacheColumn(std::span<const mem::CacheConfig> configs,
                          sim::StreamFilter filter)
{
    if (!parallel_) {
        std::vector<sim::ICacheReplayResult> out;
        out.reserve(configs.size());
        for (const mem::CacheConfig& config : configs)
            out.push_back(rep_.icache(config, filter));
        return out;
    }
    return sim::replayICache(resolved(filter, false), configs, simd_,
                             pool_);
}

mem::ThreeCStats
BenchReplay::threeCs(const mem::CacheConfig& config,
                     sim::StreamFilter filter)
{
    if (!parallel_)
        return rep_.threeCs(config, filter);
    return sim::replayThreeCs(resolved(filter, false), {&config, 1},
                              simd_, pool_)[0];
}

std::vector<mem::ThreeCStats>
BenchReplay::threeCsColumn(std::span<const mem::CacheConfig> configs,
                           sim::StreamFilter filter)
{
    if (!parallel_) {
        std::vector<mem::ThreeCStats> out;
        out.reserve(configs.size());
        for (const mem::CacheConfig& config : configs)
            out.push_back(rep_.threeCs(config, filter));
        return out;
    }
    return sim::replayThreeCs(resolved(filter, false), configs, simd_,
                              pool_);
}

mem::StreamBufferStats
BenchReplay::streamBuffer(const mem::CacheConfig& config, int num_buffers,
                          sim::StreamFilter filter)
{
    if (!parallel_)
        return rep_.streamBuffer(config, num_buffers, filter);
    return sim::replayStreamBuffer(resolved(filter, false), {&config, 1},
                                   num_buffers, simd_, pool_)[0];
}

sim::WordStats
BenchReplay::instrumented(const mem::CacheConfig& config,
                          sim::StreamFilter filter, bool flush_at_end)
{
    if (!parallel_)
        return rep_.instrumented(config, filter, flush_at_end);
    return sim::replayInstrumented(resolved(filter, false), {&config, 1},
                                   flush_at_end, pool_)[0];
}

sim::ITlbReplayResult
BenchReplay::itlb(const sim::ITlbSpec& spec, sim::StreamFilter filter)
{
    return itlbColumn({&spec, 1}, filter)[0];
}

std::vector<sim::ITlbReplayResult>
BenchReplay::itlbColumn(std::span<const sim::ITlbSpec> specs,
                        sim::StreamFilter filter)
{
    if (!parallel_) {
        std::vector<sim::ITlbReplayResult> out;
        out.reserve(specs.size());
        for (const sim::ITlbSpec& spec : specs)
            out.push_back(rep_.itlb(spec, filter));
        return out;
    }
    return sim::replayITlb(resolved(filter, false), specs, simd_,
                           pool_);
}

sim::HierarchyReplayResult
BenchReplay::hierarchy(const mem::HierarchyConfig& config,
                       bool include_data, bool model_coherence)
{
    if (!parallel_)
        return rep_.hierarchy(config, include_data, model_coherence);
    return sim::replayHierarchy(
        resolved(sim::StreamFilter::Combined, include_data), {&config, 1},
        model_coherence, pool_)[0];
}

std::vector<sim::HierarchyReplayResult>
BenchReplay::hierarchyColumn(std::span<const mem::HierarchyConfig> configs,
                             bool include_data, bool model_coherence)
{
    if (!parallel_) {
        std::vector<sim::HierarchyReplayResult> out;
        out.reserve(configs.size());
        for (const mem::HierarchyConfig& config : configs)
            out.push_back(
                rep_.hierarchy(config, include_data, model_coherence));
        return out;
    }
    return sim::replayHierarchy(
        resolved(sim::StreamFilter::Combined, include_data), configs,
        model_coherence, pool_);
}

metrics::SequenceStats
BenchReplay::sequence(sim::StreamFilter filter)
{
    if (!parallel_) {
        // The scalar oracle takes one image and the layout that maps
        // it; Combined has no oracle form (two layouts, one stream).
        SPIKESIM_ASSERT(filter != sim::StreamFilter::Combined,
                        "sequence() needs a single-image filter");
        return filter == sim::StreamFilter::AppOnly
                   ? metrics::sequenceLengths(rep_.trace(), rep_.app(),
                                              trace::ImageId::App)
                   : metrics::sequenceLengths(rep_.trace(),
                                              *rep_.kernel(),
                                              trace::ImageId::Kernel);
    }
    return sim::replaySequence(resolved(filter, false), pool_);
}

std::uint64_t
BenchReplay::dynamicInstrs(sim::StreamFilter filter)
{
    if (!parallel_)
        return rep_.dynamicInstrs(filter);
    return resolved(filter, false).instrs;
}

void
banner(const std::string& figure, const std::string& what)
{
    std::cout << "=== " << figure << ": " << what << " ===\n"
              << "(Ramirez et al., ISCA 2001 -- spikesim reproduction)\n\n";
}

void
paperVsMeasured(const std::string& metric, const std::string& paper,
                const std::string& measured)
{
    std::cout << "  " << metric << "\n    paper:    " << paper
              << "\n    measured: " << measured << "\n";
}

} // namespace spikesim::bench
