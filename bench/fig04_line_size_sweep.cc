/**
 * @file
 * Figure 4: application-only instruction cache misses across cache
 * sizes (32KB-512KB) and line sizes (16B-256B), direct-mapped, for the
 * baseline (a) and fully optimized (b) binaries. Also reports the
 * paper's packed-footprint comparison (500KB vs 315KB at 128B lines).
 *
 * Both 25-configuration sweeps are priced by the single-pass
 * stack-distance engine (one trace resolution + one pass per line size
 * per binary) and run concurrently on a thread pool.
 */

#include "bench/common.hh"
#include "metrics/footprint.hh"
#include "sim/sweep.hh"

using namespace spikesim;

namespace {

const std::vector<std::uint32_t> kSizesKb{32, 64, 128, 256, 512};
const std::vector<std::uint32_t> kLines{16, 32, 64, 128, 256};

void
printSweep(const sim::SweepResult& result, const std::string& title)
{
    std::cout << title << "\n";
    support::TablePrinter table(
        {"cache", "16B", "32B", "64B", "128B", "256B"});
    for (std::uint32_t kb : kSizesKb) {
        std::vector<std::string> row{std::to_string(kb) + "KB"};
        for (std::uint32_t line : kLines)
            row.push_back(support::withCommas(
                result.misses(kb * 1024, line, 1)));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Figure 4",
                  "application i-cache misses vs cache size and line "
                  "size (direct-mapped)");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);

    sim::SweepSpec spec;
    for (std::uint32_t kb : kSizesKb)
        spec.size_bytes.push_back(kb * 1024);
    spec.line_bytes = kLines;
    spec.assocs = {1};

    std::vector<sim::SweepJob> jobs{
        {&base, nullptr, sim::StreamFilter::AppOnly, spec, "base"},
        {&opt, nullptr, sim::StreamFilter::AppOnly, spec, "opt"},
    };
    std::vector<sim::SweepResult> results =
        sim::runSweepJobs(w.buf, jobs, w.pool());

    printSweep(results[0], "(a) baseline OLTP binary");
    printSweep(results[1], "(b) optimized OLTP binary");

    std::uint64_t base_fp =
        metrics::packedFootprintBytes(w.appProfile(), base, 128);
    std::uint64_t opt_fp =
        metrics::packedFootprintBytes(w.appProfile(), opt, 128);
    std::cout << "packed footprint in 128B lines: base "
              << support::bytesHuman(base_fp) << ", optimized "
              << support::bytesHuman(opt_fp) << " ("
              << support::percent(1.0 - static_cast<double>(opt_fp) /
                                            static_cast<double>(base_fp))
              << " smaller)\n\n";

    bench::paperVsMeasured(
        "optimized packed footprint vs base (128B lines)",
        "315KB vs 500KB (37% smaller)",
        support::bytesHuman(opt_fp) + " vs " +
            support::bytesHuman(base_fp) + " (" +
            support::percent(1.0 - static_cast<double>(opt_fp) /
                                       static_cast<double>(base_fp)) +
            " smaller)");
    bench::paperVsMeasured("line-size sweet spot",
                           "128-byte lines for both binaries",
                           "see minima of the rows above");
    return 0;
}
