/**
 * @file
 * Three-C miss decomposition (supporting the paper's Figure 6
 * analysis): the paper argues that at 32-128KB "capacity issues
 * dominate", that associativity therefore buys little, and that layout
 * optimization "not only reduces conflicts by careful ordering of code
 * segments, but also reduces capacity misses by better packing the
 * code". This bench classifies every miss as compulsory, capacity, or
 * conflict for base and optimized binaries across cache sizes.
 */

#include "bench/common.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Three-C decomposition",
                  "compulsory/capacity/conflict misses (128B lines, "
                  "direct-mapped)");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);

    const std::uint32_t sizes_kb[] = {32, 64, 128, 256};
    std::vector<mem::CacheConfig> configs;
    for (std::uint32_t kb : sizes_kb)
        configs.push_back({kb * 1024, 128, 1});
    // One fused walk per binary prices all four cache sizes.
    std::vector<mem::ThreeCStats> cols[2];
    {
        bench::BenchReplay base_rep(w, base);
        bench::BenchReplay opt_rep(w, opt);
        cols[0] =
            base_rep.threeCsColumn(configs, sim::StreamFilter::AppOnly);
        cols[1] =
            opt_rep.threeCsColumn(configs, sim::StreamFilter::AppOnly);
    }

    support::TablePrinter table({"cache", "binary", "compulsory",
                                 "capacity", "conflict", "capacity %"});
    std::uint64_t base_cap64 = 0, opt_cap64 = 0, base_conf64 = 0,
                  opt_conf64 = 0;
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        const std::uint32_t kb = sizes_kb[ci];
        for (int which = 0; which < 2; ++which) {
            const mem::ThreeCStats& s = cols[which][ci];
            double cap_share =
                s.totalMisses() == 0
                    ? 0.0
                    : static_cast<double>(s.capacity) /
                          static_cast<double>(s.totalMisses());
            if (kb == 64 && which == 0) {
                base_cap64 = s.capacity;
                base_conf64 = s.conflict;
            }
            if (kb == 64 && which == 1) {
                opt_cap64 = s.capacity;
                opt_conf64 = s.conflict;
            }
            table.addRow({std::to_string(kb) + "KB",
                          which == 0 ? "base" : "optimized",
                          support::withCommas(s.compulsory),
                          support::withCommas(s.capacity),
                          support::withCommas(s.conflict),
                          support::percent(cap_share)});
        }
    }
    table.print(std::cout);
    std::cout << "\n";

    auto pct = [](std::uint64_t o, std::uint64_t b) {
        return b == 0 ? std::string("-")
                      : support::percent(1.0 -
                                         static_cast<double>(o) /
                                             static_cast<double>(b));
    };
    bench::paperVsMeasured(
        "capacity misses dominate at realistic sizes",
        "claimed for 32-128KB (hence associativity helps little)",
        "see the capacity %% column");
    bench::paperVsMeasured(
        "layout reduces BOTH miss classes at 64KB",
        "conflicts via segment ordering; capacity via packing",
        "capacity " + pct(opt_cap64, base_cap64) + " and conflict " +
            pct(opt_conf64, base_conf64) + " reductions");
    return 0;
}
