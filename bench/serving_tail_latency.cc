/**
 * @file
 * Layout -> tail latency under open-loop load. The paper's Figure 15
 * reports whole-trace non-idle cycles; production asks what a layout
 * does to p99 latency when requests arrive on their own clock. This
 * bench reruns the fig15 ladder's endpoints (base layout vs the full
 * optimization pipeline) through the serving subsystem: per-transaction
 * service times from the replay timing model (serve::ServiceModel),
 * seeded Poisson/bursty arrivals over thousands of sessions
 * (serve::generateArrivals), and per-CPU worker shards with bounded
 * admission queues (serve::simulateOpenLoop). Offered load is set as a
 * fraction of the *base* layout's capacity at several points up to
 * near-saturation, and both layouts serve the identical arrival
 * stream, so every latency difference is the layout's doing. A
 * multi-tenant section replays N engine instances sharing each CPU's
 * L2/iTLB (the fig12/13 interference story under load).
 *
 * Flight recorder: every simulation runs with windowed accounting
 * (`--timeline-windows` fixed-width virtual-time windows per load
 * point), each run's windows are scored against a latency SLO
 * (`--slo-target` quantile under `--slo-threshold-us`; 0 = auto, 4x
 * the base layout's p99 *service* time, i.e. "queueing may at most
 * quadruple the tail") with multi-window burn-rate alerting
 * (obs/slo.hh), and the per-layout verdicts land in
 * BENCH_serving.json. With observability on, each run also becomes an
 * obs::Timeline (throughput, drops, queue depth, windowed
 * p50/p99/p999) in the manifest's "timeline" section, and
 * `--timeline-out FILE` renders them as Chrome counter events on the
 * simulation's virtual-time axis for Perfetto.
 *
 * Emits BENCH_serving.json (validated by `obs_dump --check-bench`).
 * Output carries no timings and every random stream is seeded, so runs
 * are byte-identical per seed across `--threads` widths — latency
 * percentiles, windows, and SLO burn rates are integer sketch-bucket
 * arithmetic, not wall-clock measurements. (Hardware self-profiling of
 * the service-model derivation goes to the manifest's info block only,
 * never into the artifact.)
 *
 * usage: serving_tail_latency [workload args] [--workload tpcb|ycsb]
 *          [--requests N] [--sessions N] [--shards N]
 *          [--queue-bound N] [--tenants N] [--timeline-windows N]
 *          [--slo-threshold-us F] [--slo-target F]
 *          [--zipf_theta F] [--update_ratio F] [--operation_count N]
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "db/ycsb.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/perf.hh"
#include "obs/slo.hh"
#include "obs/timeline.hh"
#include "profile/profile.hh"
#include "serve/arrival.hh"
#include "serve/queueing.hh"
#include "serve/service.hh"
#include "sim/timing.hh"
#include "support/panic.hh"

using namespace spikesim;

namespace {

struct ServingOptions
{
    std::string workload = "tpcb";
    std::uint64_t requests = 20'000; ///< target arrivals per load point
    std::uint32_t sessions = 2'000;
    int shards = 0; ///< 0 = the system's CPU count
    std::uint32_t queue_bound = 64;
    int tenants = 2; ///< multi-tenant section (1 disables)
    /** Flight recorder windows per load point (virtual time). */
    std::uint64_t timeline_windows = 60;
    /** SLO latency threshold in microseconds; 0 = auto (4x the base
     *  layout's p99 service time). */
    double slo_threshold_us = 0.0;
    /** SLO attainment target (fraction of completions under the
     *  threshold). */
    double slo_target = 0.99;
    double zipf_theta = 0.8;
    double update_ratio = 0.5;
    int operation_count = 8;
};

[[noreturn]] void
badFlag(const std::string& flag, const std::string& why)
{
    support::fatal("serving_tail_latency: bad " + flag + ": " + why);
}

double
parseDouble(const std::string& flag, const std::string& value)
{
    try {
        std::size_t pos = 0;
        double v = std::stod(value, &pos);
        if (pos != value.size())
            badFlag(flag, "trailing junk in '" + value + "'");
        return v;
    } catch (const std::exception&) {
        badFlag(flag, "not a number: '" + value + "'");
    }
}

std::uint64_t
parseCount(const std::string& flag, const std::string& value)
{
    try {
        std::size_t pos = 0;
        long long v = std::stoll(value, &pos);
        if (pos != value.size() || v < 1)
            badFlag(flag, "expected a positive count, got '" + value +
                              "'");
        return static_cast<std::uint64_t>(v);
    } catch (const std::exception&) {
        badFlag(flag, "not a number: '" + value + "'");
    }
}

/** Extract serving flags; leaves the rest for runWorkload. */
ServingOptions
parseServingArgs(int& argc, char** argv)
{
    ServingOptions o;
    std::vector<char*> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc || argv[i + 1][0] == '\0')
                badFlag(arg, "missing value");
            return argv[++i];
        };
        if (arg == "--workload") {
            o.workload = value();
            if (o.workload != "tpcb" && o.workload != "ycsb")
                badFlag(arg, "expected tpcb or ycsb");
        } else if (arg == "--requests") {
            o.requests = parseCount(arg, value());
        } else if (arg == "--sessions") {
            o.sessions =
                static_cast<std::uint32_t>(parseCount(arg, value()));
        } else if (arg == "--shards") {
            o.shards = static_cast<int>(parseCount(arg, value()));
        } else if (arg == "--queue-bound") {
            o.queue_bound =
                static_cast<std::uint32_t>(parseCount(arg, value()));
        } else if (arg == "--tenants") {
            o.tenants = static_cast<int>(parseCount(arg, value()));
        } else if (arg == "--timeline-windows") {
            o.timeline_windows = parseCount(arg, value());
        } else if (arg == "--slo-threshold-us") {
            o.slo_threshold_us = parseDouble(arg, value());
            if (o.slo_threshold_us < 0.0)
                badFlag(arg, "threshold must be >= 0");
        } else if (arg == "--slo-target") {
            o.slo_target = parseDouble(arg, value());
            if (o.slo_target <= 0.0 || o.slo_target >= 1.0)
                badFlag(arg, "target must be in (0, 1)");
        } else if (arg == "--zipf_theta") {
            o.zipf_theta = parseDouble(arg, value());
        } else if (arg == "--update_ratio") {
            o.update_ratio = parseDouble(arg, value());
        } else if (arg == "--operation_count") {
            o.operation_count =
                static_cast<int>(parseCount(arg, value()));
        } else {
            rest.push_back(argv[i]);
        }
    }
    argc = static_cast<int>(rest.size());
    for (int i = 0; i < argc; ++i)
        argv[i] = rest[static_cast<std::size_t>(i)];
    return o;
}

/** Fixed-precision decimal (deterministic across hosts). */
std::string
fixed(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

/** One load point's simulation for one layout. */
struct LayoutRun
{
    serve::ServingResult result;
    double offered_tps = 0.0;
    double sustained_tps = 0.0;
    obs::SloVerdict slo;
};

LayoutRun
runLayout(std::span<const serve::Arrival> arrivals,
          std::span<const std::uint64_t> service,
          std::uint64_t horizon, const serve::QueueConfig& qc,
          const sim::PlatformParams& platform,
          support::ThreadPool* pool)
{
    LayoutRun run;
    run.result =
        serve::simulateOpenLoop(arrivals, service, horizon, qc, pool);
    const double hz = platform.clock_ghz * 1e9;
    if (horizon > 0)
        run.offered_tps = static_cast<double>(run.result.offered) /
                          static_cast<double>(horizon) * hz;
    if (run.result.makespan_cycles > 0)
        run.sustained_tps =
            static_cast<double>(run.result.completed) /
            static_cast<double>(run.result.makespan_cycles) * hz;
    return run;
}

std::uint64_t
maxDepth(const serve::ServingResult& r)
{
    std::uint64_t deepest = 0;
    for (std::size_t d = 0; d < r.depth_hist.size(); ++d)
        if (r.depth_hist[d] != 0)
            deepest = d;
    return deepest;
}

/**
 * Flight-recorder post-pass for one run: score the windows against the
 * SLO (burn-rate alerting included) and, with observability on, turn
 * them into an obs::Timeline (virtual-time counter series) plus a
 * manifest SLO verdict. Everything here is integer window arithmetic,
 * so the verdict is byte-identical across thread-pool widths.
 */
obs::SloVerdict
recordFlightRecorder(bench::Workload& w, const std::string& name,
                     const serve::ServingResult& r,
                     const obs::SloSpec& spec_base,
                     const sim::PlatformParams& p)
{
    obs::SloSpec spec = spec_base;
    spec.name = name;
    std::vector<obs::SloWindow> wins;
    wins.reserve(r.windows.size());
    for (const serve::WindowStats& ws : r.windows) {
        obs::SloWindow sw;
        sw.bad = ws.latency.countAbove(spec.threshold_ticks);
        sw.good = ws.completed - sw.bad;
        wins.push_back(sw);
    }
    const obs::SloVerdict verdict = obs::evaluateSlo(spec, wins);

    if (w.obs() != nullptr) {
        obs::TimelineConfig tc;
        tc.name = name;
        tc.window_ticks = static_cast<double>(r.window_cycles);
        tc.us_per_tick = 1.0 / (p.clock_ghz * 1e3);
        tc.capacity = std::max<std::size_t>(std::size_t{1},
                                            r.windows.size());
        obs::Timeline tl(tc);
        tl.addSeries("arrivals");
        tl.addSeries("completed");
        tl.addSeries("dropped");
        tl.addSeries("queue_depth_max");
        tl.addSeries("p50_us");
        tl.addSeries("p99_us");
        tl.addSeries("p999_us");
        for (const serve::WindowStats& ws : r.windows) {
            const bool has = !ws.latency.empty();
            const double vals[] = {
                static_cast<double>(ws.arrivals),
                static_cast<double>(ws.completed),
                static_cast<double>(ws.dropped),
                static_cast<double>(ws.depth_max),
                has ? sim::cyclesToMicros(ws.latency.quantile(0.50), p)
                    : 0.0,
                has ? sim::cyclesToMicros(ws.latency.quantile(0.99), p)
                    : 0.0,
                has ? sim::cyclesToMicros(ws.latency.quantile(0.999), p)
                    : 0.0,
            };
            tl.appendWindow(vals);
        }
        w.obs()->addTimeline(tl);
        w.obs()->addSloVerdict(spec, verdict);
    }
    return verdict;
}

void
emitLayoutJson(std::ofstream& json, const char* key,
               const LayoutRun& run, const sim::PlatformParams& p)
{
    const serve::ServingResult& r = run.result;
    const obs::SloVerdict& v = run.slo;
    json << "\"" << key << "\": {\"completed\": " << r.completed
         << ", \"dropped\": " << r.dropped << ", \"offered_tps\": "
         << obs::jsonNumber(run.offered_tps)
         << ", \"sustained_tps\": " << obs::jsonNumber(run.sustained_tps)
         << ", \"mean_us\": "
         << obs::jsonNumber(r.mean_latency / (p.clock_ghz * 1e3))
         << ", \"p50_us\": "
         << obs::jsonNumber(sim::cyclesToMicros(r.p50, p))
         << ", \"p90_us\": "
         << obs::jsonNumber(sim::cyclesToMicros(r.p90, p))
         << ", \"p99_us\": "
         << obs::jsonNumber(sim::cyclesToMicros(r.p99, p))
         << ", \"p999_us\": "
         << obs::jsonNumber(sim::cyclesToMicros(r.p999, p))
         << ", \"max_us\": "
         << obs::jsonNumber(sim::cyclesToMicros(r.max_latency, p))
         << ", \"utilization\": " << obs::jsonNumber(r.utilization)
         << ", \"max_queue_depth\": " << maxDepth(r)
         << ", \"slo\": {\"total\": " << v.total
         << ", \"bad\": " << v.bad
         << ", \"attainment\": " << obs::jsonNumber(v.attainment)
         << ", \"budget_burn\": " << obs::jsonNumber(v.budget_burn)
         << ", \"met\": " << (v.met ? "true" : "false")
         << ", \"max_fast_burn\": " << obs::jsonNumber(v.max_fast_burn)
         << ", \"max_slow_burn\": " << obs::jsonNumber(v.max_slow_burn)
         << ", \"fast_alert_windows\": " << v.fast_alert_windows
         << ", \"slow_alert_windows\": " << v.slow_alert_windows
         << ", \"verdict\": \"" << v.verdict << "\"}}";
}

void
addTableRow(support::TablePrinter& table, const std::string& load,
            const std::string& arrivals, const std::string& layout,
            const LayoutRun& run, const sim::PlatformParams& p)
{
    const serve::ServingResult& r = run.result;
    table.addRow(
        {load, arrivals, layout, fixed(run.sustained_tps, 0),
         fixed(sim::cyclesToMicros(r.p50, p), 1),
         fixed(sim::cyclesToMicros(r.p99, p), 1),
         fixed(sim::cyclesToMicros(r.p999, p), 1),
         support::withCommas(r.dropped),
         support::percent(r.utilization), run.slo.verdict});
}

} // namespace

int
main(int argc, char** argv)
{
    ServingOptions so = parseServingArgs(argc, argv);
    bench::banner("Serving tail latency",
                  "open-loop load: layout -> service time -> p99");
    bench::Workload w = bench::runWorkload(argc, argv);

    const sim::PlatformParams platform = sim::PlatformParams::sim21364();

    // Workload selection: the TPC-B trace/profile pair from the
    // harness, or a YCSB profile + trace collected through the same
    // simulated machine (the trace the layouts are then built from).
    trace::TraceBuffer ycsb_buf;
    std::optional<profile::Profile> ycsb_app_prof;
    core::Layout kernel_layout = w.kernelLayout();
    const trace::TraceBuffer* buf = &w.buf;
    if (so.workload == "ycsb") {
        w.ensureDb();
        db::YcsbConfig ycfg;
        ycfg.zipf_theta = so.zipf_theta;
        ycfg.update_ratio = so.update_ratio;
        ycfg.operation_count = so.operation_count;
        db::YcsbDatabase ydb(
            ycfg, static_cast<db::EngineHooks*>(w.system.get()));
        std::cerr << "[serving] loading YCSB usertable ("
                  << ycfg.record_count << " records)...\n";
        ydb.setup();
        const auto request = [&](std::uint16_t p) {
            ydb.runRequest(p);
        };
        trace::NullSink warm;
        w.system->runRequests(w.profile_txns / 4, warm, request);
        std::cerr << "[serving] profiling " << w.profile_txns
                  << " YCSB requests...\n";
        ycsb_app_prof.emplace(w.appProg());
        profile::Profile kern_prof(w.kernelProg());
        {
            profile::ProfileRecorder app_rec(trace::ImageId::App,
                                             *ycsb_app_prof);
            profile::ProfileRecorder kern_rec(trace::ImageId::Kernel,
                                              kern_prof);
            trace::TeeSink tee({&app_rec, &kern_rec});
            w.system->runRequests(w.profile_txns, tee, request);
        }
        std::cerr << "[serving] tracing " << w.trace_txns
                  << " YCSB requests...\n";
        w.system->runRequests(w.trace_txns, ycsb_buf, request);
        if (ydb.verify() != "")
            std::cerr << "[serving] WARNING: ycsb inconsistent: "
                      << ydb.verify() << "\n";
        buf = &ycsb_buf;
    }

    const auto app_layout = [&](core::OptCombo combo) {
        if (!ycsb_app_prof.has_value())
            return w.appLayout(combo);
        core::PipelineOptions opts;
        opts.combo = combo;
        opts.text_base = w.system->config().app_text_base;
        return core::buildLayout(w.appProg(), *ycsb_app_prof, opts);
    };
    core::Layout base_layout = app_layout(core::OptCombo::Base);
    core::Layout opt_layout = app_layout(core::OptCombo::All);

    // Per-request service-time distributions, one hierarchy walk per
    // layout (plus the multi-tenant shared-L2/iTLB variants). With
    // observability on, the walk is also hardware self-profiled: it is
    // the bench's compute-heavy phase, and its IPC / L1I / iTLB rates
    // land in the manifest's info block (serving.perf.*) — never in
    // BENCH_serving.json, which must stay byte-identical per seed.
    std::cerr << "[serving] deriving per-request service times...\n";
    std::optional<obs::PerfCounters> svc_perf;
    std::optional<obs::PhaseClock> svc_phase;
    if (w.obs() != nullptr) {
        svc_phase.emplace(w.obs()->manifest(), "serving.service_model");
        svc_perf.emplace();
        svc_perf->start();
    }
    serve::ServiceModelConfig smc;
    smc.platform = platform;
    serve::ServiceModel base_solo(*buf, base_layout, &kernel_layout,
                                  smc);
    serve::ServiceModel opt_solo(*buf, opt_layout, &kernel_layout, smc);
    std::optional<serve::ServiceModel> base_shared;
    std::optional<serve::ServiceModel> opt_shared;
    if (so.tenants > 1) {
        smc.tenants = so.tenants;
        base_shared.emplace(*buf, base_layout, &kernel_layout, smc);
        opt_shared.emplace(*buf, opt_layout, &kernel_layout, smc);
    }
    if (svc_perf.has_value()) {
        svc_perf->stop();
        const obs::PerfSample s = svc_perf->sample();
        obs::Manifest& m = w.obs()->manifest();
        m.info.emplace_back("serving.perf.available",
                            s.available ? "1" : "0");
        if (!svc_perf->available())
            m.info.emplace_back("serving.perf.reason",
                                svc_perf->reason());
        if (s.available) {
            m.info.emplace_back("serving.perf.ipc", fixed(s.ipc(), 4));
            m.info.emplace_back("serving.perf.branch_miss_pct",
                                fixed(s.branchMissPct(), 4));
            m.info.emplace_back("serving.perf.l1i_mpki",
                                fixed(s.l1iMpki(), 4));
            m.info.emplace_back("serving.perf.l1d_mpki",
                                fixed(s.l1dMpki(), 4));
            m.info.emplace_back("serving.perf.itlb_mpki",
                                fixed(s.itlbMpki(), 4));
            m.info.emplace_back("serving.perf.frontend_bound_pct",
                                fixed(s.frontendBoundPct(), 4));
        }
    }
    svc_phase.reset();

    const serve::ServiceStats& sb = base_solo.stats();
    const serve::ServiceStats& sopt = opt_solo.stats();
    std::cout << "service times (" << so.workload << ", "
              << sb.requests << " transactions, " << platform.name
              << "):\n  base: mean "
              << fixed(sb.mean_cycles, 0) << " cyc, p50 "
              << support::withCommas(sb.p50_cycles) << ", p99 "
              << support::withCommas(sb.p99_cycles)
              << "\n  opt:  mean " << fixed(sopt.mean_cycles, 0)
              << " cyc, p50 " << support::withCommas(sopt.p50_cycles)
              << ", p99 " << support::withCommas(sopt.p99_cycles)
              << "  (mean -"
              << support::percent(1.0 - sopt.mean_cycles /
                                            sb.mean_cycles)
              << ")\n\n";

    const int shards = so.shards > 0
                           ? so.shards
                           : w.system->config().num_cpus;
    serve::QueueConfig qc;
    qc.shards = shards;
    qc.queue_bound = so.queue_bound;
    qc.seed = w.seed;

    // Latency SLO: auto mode caps the tail at 4x the base layout's p99
    // *service* time — the latency a near-empty system would deliver —
    // so the verdict measures what queueing adds, not the raw layout.
    obs::SloSpec slo_spec;
    slo_spec.target = so.slo_target;
    slo_spec.threshold_ticks =
        so.slo_threshold_us > 0.0
            ? static_cast<std::uint64_t>(so.slo_threshold_us *
                                         platform.clock_ghz * 1e3)
            : 4 * sb.p99_cycles;
    const double slo_threshold_us =
        sim::cyclesToMicros(slo_spec.threshold_ticks, platform);

    // Offered load as a fraction of the BASE layout's capacity; both
    // layouts serve the identical arrival stream at each point.
    struct LoadPoint
    {
        double rho;
        serve::ArrivalKind kind;
    };
    const std::vector<LoadPoint> points = {
        {0.60, serve::ArrivalKind::Poisson},
        {0.85, serve::ArrivalKind::Poisson},
        {0.97, serve::ArrivalKind::Poisson},
        {0.85, serve::ArrivalKind::Bursty},
    };
    const double capacity =
        static_cast<double>(shards) / sb.mean_cycles;

    support::TablePrinter table({"load", "arrivals", "layout",
                                 "tput/s", "p50 us", "p99 us",
                                 "p999 us", "dropped", "util", "slo"});
    std::ofstream json("BENCH_serving.json");
    json << "{\n"
         << "  \"bench\": \"serving\",\n"
         << "  \"seed\": " << w.seed << ",\n"
         << "  \"workload\": \"" << so.workload << "\",\n"
         << "  \"profile_txns\": " << w.profile_txns << ",\n"
         << "  \"trace_txns\": " << w.trace_txns << ",\n"
         << "  \"requests\": " << so.requests << ",\n"
         << "  \"sessions\": " << so.sessions << ",\n"
         << "  \"shards\": " << shards << ",\n"
         << "  \"queue_bound\": " << so.queue_bound << ",\n"
         << "  \"tenants\": " << so.tenants << ",\n"
         << "  \"platform\": {\"name\": \"" << platform.name
         << "\", \"clock_ghz\": " << obs::jsonNumber(platform.clock_ghz)
         << "},\n"
         << "  \"service\": {\"requests\": " << sb.requests
         << ", \"base\": {\"mean_cycles\": "
         << obs::jsonNumber(sb.mean_cycles)
         << ", \"p50_cycles\": " << sb.p50_cycles
         << ", \"p99_cycles\": " << sb.p99_cycles
         << "}, \"opt\": {\"mean_cycles\": "
         << obs::jsonNumber(sopt.mean_cycles)
         << ", \"p50_cycles\": " << sopt.p50_cycles
         << ", \"p99_cycles\": " << sopt.p99_cycles << "}},\n"
         << "  \"slo_spec\": {\"target\": "
         << obs::jsonNumber(slo_spec.target)
         << ", \"threshold_cycles\": " << slo_spec.threshold_ticks
         << ", \"threshold_us\": " << obs::jsonNumber(slo_threshold_us)
         << ", \"windows\": " << so.timeline_windows << "},\n"
         << "  \"loads\": [\n";

    std::optional<obs::PhaseClock> sim_phase;
    if (w.obs() != nullptr)
        sim_phase.emplace(w.obs()->manifest(), "serving.simulate");

    double saturation_p99_gain = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const LoadPoint& lp = points[i];
        const bool bursty = lp.kind == serve::ArrivalKind::Bursty;
        serve::ArrivalConfig ac;
        ac.kind = lp.kind;
        ac.sessions = so.sessions;
        ac.rate = lp.rho * capacity;
        ac.horizon_cycles = static_cast<std::uint64_t>(
            static_cast<double>(so.requests) / ac.rate);
        ac.seed = w.seed;
        const std::vector<serve::Arrival> arrivals =
            serve::generateArrivals(ac);
        qc.window_cycles = std::max<std::uint64_t>(
            std::uint64_t{1}, ac.horizon_cycles / so.timeline_windows);

        LayoutRun base_run = runLayout(
            arrivals, base_solo.requestCycles(), ac.horizon_cycles,
            qc, platform, w.pool());
        LayoutRun opt_run = runLayout(
            arrivals, opt_solo.requestCycles(), ac.horizon_cycles, qc,
            platform, w.pool());

        const std::string kind = bursty ? "bursty" : "poisson";
        const std::string run_tag = kind + "-rho" + fixed(lp.rho, 2);
        base_run.slo = recordFlightRecorder(
            w, run_tag + "-base", base_run.result, slo_spec, platform);
        opt_run.slo = recordFlightRecorder(
            w, run_tag + "-opt", opt_run.result, slo_spec, platform);

        const std::string load_label =
            fixed(lp.rho, 2) + (bursty ? " bursty" : "");
        addTableRow(table, load_label, kind, "base", base_run,
                    platform);
        addTableRow(table, load_label, kind, "optimized", opt_run,
                    platform);

        const double p99_gain =
            base_run.result.p99 > 0
                ? 1.0 - static_cast<double>(opt_run.result.p99) /
                            static_cast<double>(base_run.result.p99)
                : 0.0;
        if (!bursty && lp.rho > 0.9)
            saturation_p99_gain = p99_gain;

        json << (i ? ",\n" : "") << "    {\"rho\": "
             << obs::jsonNumber(lp.rho) << ", \"arrival\": \"" << kind
             << "\", \"offered\": " << base_run.result.offered
             << ", \"horizon_cycles\": " << ac.horizon_cycles << ",\n"
             << "     ";
        emitLayoutJson(json, "base", base_run, platform);
        json << ",\n     ";
        emitLayoutJson(json, "opt", opt_run, platform);
        json << ",\n     \"p99_improvement_pct\": "
             << obs::jsonNumber(p99_gain * 100.0) << "}";
    }
    json << "\n  ]";

    // Multi-tenant: N instances share each CPU's L2 + iTLB; offered
    // load per tenant is the mid load point against solo capacity, so
    // the delta vs the solo row is pure shared-structure interference.
    if (base_shared.has_value()) {
        const double rho = 0.85;
        serve::ArrivalConfig ac;
        ac.sessions = so.sessions;
        ac.rate = rho * capacity;
        ac.horizon_cycles = static_cast<std::uint64_t>(
            static_cast<double>(so.requests) / ac.rate);
        ac.seed = w.seed;
        const std::vector<serve::Arrival> arrivals =
            serve::generateArrivals(ac);
        qc.window_cycles = std::max<std::uint64_t>(
            std::uint64_t{1}, ac.horizon_cycles / so.timeline_windows);
        LayoutRun base_run = runLayout(
            arrivals, base_shared->requestCycles(), ac.horizon_cycles,
            qc, platform, w.pool());
        LayoutRun opt_run = runLayout(
            arrivals, opt_shared->requestCycles(), ac.horizon_cycles,
            qc, platform, w.pool());
        const std::string tenant_tag =
            "poisson-rho" + fixed(rho, 2) + "-x" +
            std::to_string(so.tenants);
        base_run.slo = recordFlightRecorder(
            w, tenant_tag + "-base", base_run.result, slo_spec,
            platform);
        opt_run.slo = recordFlightRecorder(
            w, tenant_tag + "-opt", opt_run.result, slo_spec, platform);
        const std::string label =
            fixed(rho, 2) + " x" + std::to_string(so.tenants);
        addTableRow(table, label, "poisson", "base", base_run,
                    platform);
        addTableRow(table, label, "poisson", "optimized", opt_run,
                    platform);
        const double base_inflation =
            base_shared->stats().mean_cycles / sb.mean_cycles - 1.0;
        const double opt_inflation =
            opt_shared->stats().mean_cycles / sopt.mean_cycles - 1.0;
        json << ",\n  \"multi_tenant\": {\"tenants\": " << so.tenants
             << ", \"rho\": " << obs::jsonNumber(rho)
             << ", \"service_inflation_base_pct\": "
             << obs::jsonNumber(base_inflation * 100.0)
             << ", \"service_inflation_opt_pct\": "
             << obs::jsonNumber(opt_inflation * 100.0) << ",\n   ";
        emitLayoutJson(json, "base", base_run, platform);
        json << ",\n   ";
        emitLayoutJson(json, "opt", opt_run, platform);
        json << "}";
    }
    json << "\n}\n";
    json.close();
    sim_phase.reset();

    table.print(std::cout);
    std::cout << "\nwrote BENCH_serving.json\n\n";
    w.recordArtifact("BENCH_serving.json");
    if (w.obs() != nullptr) {
        obs::Manifest& m = w.obs()->manifest();
        m.info.emplace_back("serving.workload", so.workload);
        m.info.emplace_back("serving.sessions",
                            std::to_string(so.sessions));
        m.info.emplace_back("serving.shards", std::to_string(shards));
        m.info.emplace_back("serving.queue_bound",
                            std::to_string(so.queue_bound));
        m.info.emplace_back("serving.tenants",
                            std::to_string(so.tenants));
        m.info.emplace_back("serving.timeline_windows",
                            std::to_string(so.timeline_windows));
        m.info.emplace_back("serving.slo_threshold_cycles",
                            std::to_string(slo_spec.threshold_ticks));
        m.info.emplace_back(
            "serving.saturation_p99_improvement_pct",
            fixed(saturation_p99_gain * 100.0, 2));
    }

    bench::paperVsMeasured(
        "layout -> tail latency",
        "the paper reports 1.33x fewer non-idle cycles (fig15); "
        "queueing theory says service-time cuts compound near "
        "saturation",
        "p99 at 0.97 load improves " +
            support::percent(saturation_p99_gain) +
            " (mean service -" +
            support::percent(1.0 - sopt.mean_cycles / sb.mean_cycles) +
            ")");
    return 0;
}
