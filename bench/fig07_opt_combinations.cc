/**
 * @file
 * Figure 7: contribution of the individual code layout optimizations --
 * base, porder, chain, chain+split, chain+porder, all -- to
 * application instruction cache misses (128B lines, 4-way). The two
 * ablations the repository adds (classic hot/cold splitting and the
 * CFA layout the paper evaluated and rejected) are reported as well.
 */

#include "bench/common.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 7",
                  "impact of each optimization combination (128B/4-way)");
    bench::Workload w = bench::runWorkload(argc, argv);

    const std::vector<std::uint32_t> sizes{32, 64, 128, 256, 512};
    support::TablePrinter table({"optimizations", "32KB", "64KB",
                                 "128KB", "256KB", "512KB"});
    std::uint64_t base64 = 0, porder64 = 0, chain64 = 0, all64 = 0;
    for (core::OptCombo combo : core::allCombos()) {
        core::Layout layout = w.appLayout(combo);
        sim::Replayer rep(w.buf, layout);
        std::vector<std::string> row{core::comboName(combo)};
        for (std::uint32_t kb : sizes) {
            auto r = rep.icache({kb * 1024, 128, 4},
                                sim::StreamFilter::AppOnly);
            if (kb == 64) {
                if (combo == core::OptCombo::Base)
                    base64 = r.misses;
                if (combo == core::OptCombo::POrder)
                    porder64 = r.misses;
                if (combo == core::OptCombo::Chain)
                    chain64 = r.misses;
                if (combo == core::OptCombo::All)
                    all64 = r.misses;
            }
            row.push_back(support::withCommas(r.misses));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";

    auto pct = [](std::uint64_t part, std::uint64_t whole) {
        return support::percent(1.0 - static_cast<double>(part) /
                                          static_cast<double>(whole));
    };
    bench::paperVsMeasured(
        "basic block chaining is the largest single win (64KB)",
        "chain alone provides most of the improvement",
        "chain saves " + pct(chain64, base64) + ", all saves " +
            pct(all64, base64));
    bench::paperVsMeasured(
        "procedure ordering alone",
        "slight *increase* in misses",
        "porder alone changes misses by " +
            support::fixed((static_cast<double>(porder64) /
                                static_cast<double>(base64) -
                            1.0) *
                               100.0,
                           1) +
            "% (our ~1MB image makes whole-procedure clustering more "
            "effective than on Oracle's 27MB text; see EXPERIMENTS.md)");
    bench::paperVsMeasured(
        "ordering after fine-grain splitting",
        "chain+split+porder (all) clearly best",
        "all = " + support::withCommas(all64) + " vs chain = " +
            support::withCommas(chain64) + " at 64KB");
    return 0;
}
