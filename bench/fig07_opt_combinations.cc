/**
 * @file
 * Figure 7: contribution of the individual code layout optimizations --
 * base, porder, chain, chain+split, chain+porder, all -- to
 * application instruction cache misses (128B lines, 4-way). The two
 * ablations the repository adds (classic hot/cold splitting and the
 * CFA layout the paper evaluated and rejected) are reported as well.
 * Every combination's sweep is an independent job on the thread pool.
 */

#include <map>

#include "bench/common.hh"
#include "sim/sweep.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 7",
                  "impact of each optimization combination (128B/4-way)");
    bench::Workload w = bench::runWorkload(argc, argv);

    sim::SweepSpec spec;
    for (std::uint32_t kb : {32, 64, 128, 256, 512})
        spec.size_bytes.push_back(kb * 1024);
    spec.line_bytes = {128};
    spec.assocs = {4};

    // Build every combination's layout up front (jobs hold pointers).
    std::vector<core::OptCombo> combos = core::allCombos();
    std::vector<core::Layout> layouts;
    layouts.reserve(combos.size());
    for (core::OptCombo combo : combos)
        layouts.push_back(w.appLayout(combo));

    std::vector<sim::SweepJob> jobs;
    jobs.reserve(combos.size());
    for (std::size_t i = 0; i < combos.size(); ++i)
        jobs.push_back({&layouts[i], nullptr,
                        sim::StreamFilter::AppOnly, spec,
                        core::comboName(combos[i])});
    std::vector<sim::SweepResult> results =
        sim::runSweepJobs(w.buf, jobs, w.pool());

    // Key the summary picks on combo *names*, not enum positions, so
    // the table and the paper-comparison lines below survive combos
    // being appended to allCombos().
    support::TablePrinter table({"optimizations", "32KB", "64KB",
                                 "128KB", "256KB", "512KB"});
    std::map<std::string, std::uint64_t> misses64;
    for (std::size_t i = 0; i < combos.size(); ++i) {
        std::vector<std::string> row{core::comboName(combos[i])};
        for (std::uint32_t kb : spec.size_bytes) {
            std::uint64_t misses = results[i].misses(kb, 128, 4);
            if (kb == 64 * 1024)
                misses64[core::comboName(combos[i])] = misses;
            row.push_back(support::withCommas(misses));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";

    const std::uint64_t base64 = misses64.at("base");
    const std::uint64_t porder64 = misses64.at("porder");
    const std::uint64_t chain64 = misses64.at("chain");
    const std::uint64_t all64 = misses64.at("all");

    auto pct = [](std::uint64_t part, std::uint64_t whole) {
        return support::percent(1.0 - static_cast<double>(part) /
                                          static_cast<double>(whole));
    };
    bench::paperVsMeasured(
        "basic block chaining is the largest single win (64KB)",
        "chain alone provides most of the improvement",
        "chain saves " + pct(chain64, base64) + ", all saves " +
            pct(all64, base64));
    bench::paperVsMeasured(
        "procedure ordering alone",
        "slight *increase* in misses",
        "porder alone changes misses by " +
            support::fixed((static_cast<double>(porder64) /
                                static_cast<double>(base64) -
                            1.0) *
                               100.0,
                           1) +
            "% (our ~1MB image makes whole-procedure clustering more "
            "effective than on Oracle's 27MB text; see EXPERIMENTS.md)");
    bench::paperVsMeasured(
        "ordering after fine-grain splitting",
        "chain+split+porder (all) clearly best",
        "all = " + support::withCommas(all64) + " vs chain = " +
            support::withCommas(chain64) + " at 64KB");
    return 0;
}
