/**
 * @file
 * Microbenchmarks for the persistent trace/profile corpus (capture vs.
 * load, encode/decode throughput).
 *
 * Before the google-benchmark suite runs, a headline comparison prices
 * the full default bench workload (800 profile + 500 trace
 * transactions) both ways: generate it from scratch the way a
 * cache-missing bench would, then load the saved corpus the way every
 * later bench of a sweep does. It verifies the loaded trace is
 * bit-identical, reports the compression ratio and the load-vs-
 * regeneration speedup (the acceptance bar is ≥10x), and writes the
 * numbers to BENCH_trace_io.json alongside BENCH_cachesim.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench/common.hh"
#include "sim/corpus.hh"
#include "support/rng.hh"
#include "support/varint.hh"
#include "trace/serialize.hh"

using namespace spikesim;

namespace {

// Per-site RNG streams derived from the one shared seed
// (bench::seedFromEnv); the stream ids keep the sites decorrelated.
constexpr std::uint64_t kSyntheticTraceStream = 41;
constexpr std::uint64_t kVarintStream = 3;

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Bursty synthetic trace shaped like the real event stream. */
trace::TraceBuffer
syntheticTrace(std::size_t n)
{
    trace::TraceBuffer buf;
    buf.reserve(n);
    support::Pcg32 rng(bench::seedFromEnv(), kSyntheticTraceStream);
    trace::TraceEvent e;
    std::uint32_t walk[trace::kNumImages] = {500, 90000, 4000000};
    std::size_t made = 0;
    while (made < n) {
        e.image = static_cast<trace::ImageId>(rng.nextBounded(3));
        e.process = static_cast<std::uint16_t>(rng.nextBounded(32));
        e.cpu = static_cast<std::uint8_t>(rng.nextBounded(4));
        const std::size_t run =
            std::min<std::size_t>(n - made, 1 + rng.nextBounded(50));
        auto& pos = walk[static_cast<std::size_t>(e.image)];
        for (std::size_t i = 0; i < run; ++i) {
            pos += static_cast<std::uint32_t>(rng.nextBounded(17)) - 8;
            e.block = pos;
            buf.append(e);
            ++made;
        }
    }
    return buf;
}

/**
 * Headline: regeneration vs. corpus load at the default bench
 * transaction counts, with a bit-identity check. Writes
 * BENCH_trace_io.json.
 */
void
runCaptureVsLoad()
{
    using clock = std::chrono::steady_clock;
    sim::CorpusParams params; // bench defaults: 800 profile, 500 trace

    std::cout << "=== corpus capture vs load (default bench workload) "
                 "===\n";
    // Both sides of the comparison are measured three times and
    // reported as medians; generation is deterministic, so repeating
    // it prices the same work. One scheduling hiccup on this shared
    // machine otherwise swings the ratio by over 10%.
    double gen_samples[3];
    sim::GeneratedWorkload gen;
    for (double& sample : gen_samples) {
        const auto t0 = clock::now();
        gen = sim::generateWorkload(params, &std::cerr);
        const auto t1 = clock::now();
        sample = seconds(t0, t1);
    }
    std::sort(std::begin(gen_samples), std::end(gen_samples));

    const std::string path = "corpus_trace_io_tmp.spkc";
    const auto t1 = clock::now();
    const sim::CorpusStats stats =
        sim::saveCorpus(params, *gen.profiles, gen.buf, path);
    const auto t2 = clock::now();

    // The load path exactly as a cache-hitting bench pays it: build
    // the system (images only — replay never touches the database, so
    // loadOrCapture skips setup() on a hit), decode the corpus. Run it
    // three times and report the median so one scheduling hiccup does
    // not skew the headline number.
    struct LoadSample
    {
        double build_s, decode_s, total_s;
    };
    LoadSample samples[3];
    std::optional<sim::System::Profiles> profiles;
    trace::TraceBuffer buf;
    for (LoadSample& sample : samples) {
        profiles.reset();
        buf = trace::TraceBuffer(); // drop capacity: a fresh load
        const auto t3 = clock::now();
        sim::System system(params.config);
        const auto t4 = clock::now();
        if (!sim::loadCorpus(path, params, system, profiles, buf)) {
            std::cerr << "FATAL: corpus load missed its own capture\n";
            std::exit(1);
        }
        const auto t5 = clock::now();
        sample = {seconds(t3, t4), seconds(t4, t5), seconds(t3, t5)};
    }
    std::sort(std::begin(samples), std::end(samples),
              [](const LoadSample& a, const LoadSample& b) {
                  return a.total_s < b.total_s;
              });
    const LoadSample& med = samples[1];

    if (buf.size() != gen.buf.size() ||
        !std::equal(buf.events().begin(), buf.events().end(),
                    gen.buf.events().begin(),
                    [](const trace::TraceEvent& a,
                       const trace::TraceEvent& b) {
                        return a.block == b.block &&
                               a.process == b.process && a.cpu == b.cpu &&
                               a.image == b.image;
                    })) {
        std::cerr << "FATAL: corpus-loaded trace differs from the "
                     "generated trace\n";
        std::exit(1);
    }

    const double generate_s = gen_samples[1];
    const double save_s = seconds(t1, t2);
    const double build_s = med.build_s;
    const double decode_s = med.decode_s;
    const double load_total_s = med.total_s;
    const double speedup = generate_s / load_total_s;

    std::cout << "trace events:        " << stats.events << "\n"
              << "raw trace bytes:     " << stats.raw_bytes << "\n"
              << "corpus file bytes:   " << stats.file_bytes << "\n"
              << "trace compression:   " << stats.ratio << "x\n"
              << "generate (capture):  " << generate_s
              << " s (median of 3)\n"
              << "corpus save:         " << save_s << " s\n"
              << "corpus load:         " << load_total_s
              << " s (median of 3; " << build_s << " s image build + "
              << decode_s << " s decode)\n"
              << "load speedup:        " << speedup
              << "x vs regeneration (bar: >= 10x)\n"
              << "differential check:  PASS (trace bit-identical)\n\n";

    std::ofstream json("BENCH_trace_io.json");
    json << "{\n"
         << "  \"bench\": \"trace_io\",\n"
         << "  \"profile_txns\": " << params.profile_txns << ",\n"
         << "  \"trace_txns\": " << params.trace_txns << ",\n"
         << "  \"trace_events\": " << stats.events << ",\n"
         << "  \"raw_trace_bytes\": " << stats.raw_bytes << ",\n"
         << "  \"corpus_file_bytes\": " << stats.file_bytes << ",\n"
         << "  \"trace_compression_ratio\": " << stats.ratio << ",\n"
         << "  \"generate_seconds\": " << generate_s << ",\n"
         << "  \"save_seconds\": " << save_s << ",\n"
         << "  \"load_image_build_seconds\": " << build_s << ",\n"
         << "  \"load_decode_seconds\": " << decode_s << ",\n"
         << "  \"load_total_seconds\": " << load_total_s << ",\n"
         << "  \"load_speedup_vs_regeneration\": " << speedup << ",\n"
         << "  \"speedup_bar_10x_met\": "
         << (speedup >= 10.0 ? "true" : "false") << ",\n"
         << "  \"differential_ok\": true\n"
         << "}\n";
    std::cout << "wrote BENCH_trace_io.json\n\n";

    std::error_code ec;
    std::filesystem::remove(path, ec);
}

void
BM_TraceEncode(benchmark::State& state)
{
    static trace::TraceBuffer buf = syntheticTrace(1 << 20);
    std::size_t encoded = 0;
    for (auto _ : state) {
        std::vector<std::uint8_t> bytes;
        trace::TraceWriter w;
        w.addAll(buf);
        w.finish(bytes);
        encoded = bytes.size();
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(buf.size() * sizeof(trace::TraceEvent)));
    state.counters["encoded_bytes"] =
        static_cast<double>(encoded);
}
BENCHMARK(BM_TraceEncode)->Unit(benchmark::kMillisecond);

void
BM_TraceDecode(benchmark::State& state)
{
    static trace::TraceBuffer buf = syntheticTrace(1 << 20);
    static std::vector<std::uint8_t> bytes = [] {
        std::vector<std::uint8_t> out;
        trace::TraceWriter w;
        w.addAll(buf);
        w.finish(out);
        return out;
    }();
    for (auto _ : state) {
        trace::TraceBuffer out;
        support::ByteReader r(bytes.data(), bytes.size());
        trace::TraceReader reader(r);
        reader.readAll(out);
        benchmark::DoNotOptimize(out.events().data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(buf.size() * sizeof(trace::TraceEvent)));
}
BENCHMARK(BM_TraceDecode)->Unit(benchmark::kMillisecond);

void
BM_VarintEncode(benchmark::State& state)
{
    support::Pcg32 rng(bench::seedFromEnv(), kVarintStream);
    std::vector<std::uint64_t> values(1 << 16);
    for (auto& v : values)
        v = rng.next() >> rng.nextBounded(28);
    for (auto _ : state) {
        std::vector<std::uint8_t> out;
        out.reserve(values.size() * 5);
        for (std::uint64_t v : values)
            support::putVarint(out, v);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_VarintEncode);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // google-benchmark owns the argv, so observability comes from the
    // environment (SPIKESIM_TRACE_OUT / SPIKESIM_MANIFEST_OUT /
    // SPIKESIM_PROGRESS).
    bench::ObsRun obs(bench::obsOptionsFromEnv(), argc, argv);
    runCaptureVsLoad();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    obs.addArtifactFile("BENCH_trace_io.json");
    return 0;
}
