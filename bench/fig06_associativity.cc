/**
 * @file
 * Figure 6: impact of associativity (direct-mapped vs 4-way) on
 * instruction cache misses for the baseline and optimized binaries,
 * 128-byte lines.
 */

#include "bench/common.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 6",
                  "associativity impact (128B lines), base vs optimized");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);
    sim::Replayer base_rep(w.buf, base);
    sim::Replayer opt_rep(w.buf, opt);

    support::TablePrinter table({"cache", "baseline", "baseline 4-way",
                                 "optimized", "optimized 4-way"});
    double assoc_gain_64 = 0, layout_gain_64 = 0;
    for (std::uint32_t kb : {32, 64, 128, 256, 512}) {
        auto b1 = base_rep.icache({kb * 1024, 128, 1},
                                  sim::StreamFilter::AppOnly);
        auto b4 = base_rep.icache({kb * 1024, 128, 4},
                                  sim::StreamFilter::AppOnly);
        auto o1 = opt_rep.icache({kb * 1024, 128, 1},
                                 sim::StreamFilter::AppOnly);
        auto o4 = opt_rep.icache({kb * 1024, 128, 4},
                                 sim::StreamFilter::AppOnly);
        if (kb == 64) {
            assoc_gain_64 =
                1.0 - static_cast<double>(b4.misses) /
                          static_cast<double>(b1.misses);
            layout_gain_64 =
                1.0 - static_cast<double>(o1.misses) /
                          static_cast<double>(b1.misses);
        }
        table.addRow({std::to_string(kb) + "KB",
                      support::withCommas(b1.misses),
                      support::withCommas(b4.misses),
                      support::withCommas(o1.misses),
                      support::withCommas(o4.misses)});
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "associativity vs layout optimization (64KB)",
        "associativity gains are small; layout gains much larger",
        "4-way saves " + support::percent(assoc_gain_64) +
            " of base misses; layout saves " +
            support::percent(layout_gain_64));
    return 0;
}
