/**
 * @file
 * Figure 6: impact of associativity (direct-mapped vs 4-way) on
 * instruction cache misses for the baseline and optimized binaries,
 * 128-byte lines. One stack-distance pass per binary prices both
 * associativities at every size.
 */

#include "bench/common.hh"
#include "sim/sweep.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 6",
                  "associativity impact (128B lines), base vs optimized");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);

    sim::SweepSpec spec;
    for (std::uint32_t kb : {32, 64, 128, 256, 512})
        spec.size_bytes.push_back(kb * 1024);
    spec.line_bytes = {128};
    spec.assocs = {1, 4};

    std::vector<sim::SweepJob> jobs{
        {&base, nullptr, sim::StreamFilter::AppOnly, spec, "base"},
        {&opt, nullptr, sim::StreamFilter::AppOnly, spec, "opt"},
    };
    std::vector<sim::SweepResult> results =
        sim::runSweepJobs(w.buf, jobs, w.pool());
    const sim::SweepResult& b = results[0];
    const sim::SweepResult& o = results[1];

    support::TablePrinter table({"cache", "baseline", "baseline 4-way",
                                 "optimized", "optimized 4-way"});
    double assoc_gain_64 = 0, layout_gain_64 = 0;
    for (std::uint32_t kb : spec.size_bytes) {
        std::uint64_t b1 = b.misses(kb, 128, 1);
        std::uint64_t b4 = b.misses(kb, 128, 4);
        std::uint64_t o1 = o.misses(kb, 128, 1);
        std::uint64_t o4 = o.misses(kb, 128, 4);
        if (kb == 64 * 1024) {
            assoc_gain_64 = 1.0 - static_cast<double>(b4) /
                                      static_cast<double>(b1);
            layout_gain_64 = 1.0 - static_cast<double>(o1) /
                                       static_cast<double>(b1);
        }
        table.addRow({std::to_string(kb / 1024) + "KB",
                      support::withCommas(b1), support::withCommas(b4),
                      support::withCommas(o1), support::withCommas(o4)});
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "associativity vs layout optimization (64KB)",
        "associativity gains are small; layout gains much larger",
        "4-way saves " + support::percent(assoc_gain_64) +
            " of base misses; layout saves " +
            support::percent(layout_gain_64));
    return 0;
}
