/**
 * @file
 * Figure 11: cache line lifetimes in cache cycles (number of cache
 * accesses between fill and replacement), log2 buckets, for the base
 * and optimized binaries (128KB/128B/4-way).
 */

#include "bench/common.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 11",
                  "cache line lifetimes (128KB/128B/4-way)");
    bench::Workload w = bench::runWorkload(argc, argv);
    mem::CacheConfig cache{128 * 1024, 128, 4};
    core::Layout base_layout = w.appLayout(core::OptCombo::Base);
    core::Layout opt_layout = w.appLayout(core::OptCombo::All);
    bench::BenchReplay base_rep(w, base_layout);
    bench::BenchReplay opt_rep(w, opt_layout);
    sim::WordStats base =
        base_rep.instrumented(cache, sim::StreamFilter::AppOnly);
    sim::WordStats opt =
        opt_rep.instrumented(cache, sim::StreamFilter::AppOnly);

    support::TablePrinter table(
        {"lifetime (log2 cycles)", "base", "optimized"});
    for (std::size_t b = 4; b < 28; ++b)
        table.addRow({std::to_string(b),
                      support::percent(base.lifetimes.fraction(b)),
                      support::percent(opt.lifetimes.fraction(b))});
    table.print(std::cout);

    double base_mean = base.lifetimes.mean();
    double opt_mean = opt.lifetimes.mean();
    std::cout << "\nmean lifetime: base "
              << support::withCommas(
                     static_cast<std::uint64_t>(base_mean))
              << " cycles, optimized "
              << support::withCommas(static_cast<std::uint64_t>(opt_mean))
              << " cycles\n\n";

    bench::paperVsMeasured(
        "average line lifetime",
        "increases by over a factor of 2 with layout optimization",
        "x" + support::fixed(opt_mean / base_mean, 2));
    return 0;
}
