/**
 * @file
 * Per-subsystem miss attribution: which parts of the database engine
 * (SQL layer, B-tree, buffer manager, logging, ...) take the
 * instruction cache misses, before and after layout optimization. Not
 * a figure from the paper, but exactly the breakdown the authors'
 * methodology enables — and a useful sanity check that the optimizer
 * helps the subsystems that dominate the workload.
 */

#include <algorithm>
#include <map>

#include "bench/common.hh"

using namespace spikesim;

namespace {

/** Misses per subsystem for one layout. */
std::map<std::string, std::uint64_t>
missesBySubsystem(const bench::Workload& w, const core::Layout& layout)
{
    // Per-CPU caches, attributing each miss to the block's subsystem.
    const auto& image = w.system->appImage();
    std::vector<mem::SetAssocCache> caches;
    const int cpus = w.buf.numCpus();
    for (int i = 0; i < cpus; ++i)
        caches.emplace_back(mem::CacheConfig{64 * 1024, 128, 4});

    std::map<std::string, std::uint64_t> misses;
    for (const auto& e : w.buf.events()) {
        if (e.image != trace::ImageId::App)
            continue;
        std::uint64_t bytes = layout.blockBytes(e.block);
        if (bytes == 0)
            continue;
        std::uint64_t addr = layout.blockAddr(e.block);
        auto [proc, local] = w.appProg().locateBlock(e.block);
        (void)local;
        const std::string& sub = image.subsystem_of[proc];
        for (std::uint64_t a = addr & ~127ull; a < addr + bytes;
             a += 128) {
            if (!caches[e.cpu].access(a, mem::Owner::App).hit)
                ++misses[sub];
        }
    }
    return misses;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Subsystem attribution",
                  "i-cache misses by engine subsystem (64KB/128B/4-way)");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);

    auto base_misses = missesBySubsystem(w, base);
    auto opt_misses = missesBySubsystem(w, opt);

    // Sort subsystems by baseline miss count.
    std::vector<std::pair<std::string, std::uint64_t>> rows(
        base_misses.begin(), base_misses.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) {
                  return a.second > b.second;
              });

    support::TablePrinter table(
        {"subsystem", "base misses", "optimized", "reduction"});
    for (const auto& [sub, misses] : rows) {
        std::uint64_t after = opt_misses[sub];
        table.addRow({sub, support::withCommas(misses),
                      support::withCommas(after),
                      misses == 0
                          ? "-"
                          : support::percent(
                                1.0 - static_cast<double>(after) /
                                          static_cast<double>(misses))});
    }
    table.print(std::cout);
    std::cout << "\n";
    bench::paperVsMeasured(
        "where the misses live",
        "OLTP miss profile is spread across the whole engine "
        "(flat profile, Fig 3); layout helps across the board",
        "see the per-subsystem reductions above");
    return 0;
}
