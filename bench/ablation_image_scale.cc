/**
 * @file
 * Image-scale ablation: how do the layout gains — and especially the
 * effect of whole-procedure ordering alone — depend on the size of the
 * binary? This directly probes the one deviation this reproduction has
 * from the paper: on Oracle's 27MB text, porder alone slightly *hurt*,
 * while on our ~1MB image it helps. If the deviation's explanation is
 * right, porder's benefit should shrink as the image grows while
 * chaining's benefit stays put.
 */

#include "bench/common.hh"

using namespace spikesim;

namespace {

struct Row
{
    std::uint64_t text_kb = 0;
    double porder_gain = 0;
    double chain_gain = 0;
    double all_gain = 0;
};

Row
runScale(double scale, std::uint64_t profile_txns,
         std::uint64_t trace_txns, support::ThreadPool* pool)
{
    sim::SystemConfig config;
    config.app_image_scale = scale;
    sim::System system(config);
    std::cerr << "[scale " << scale << "] image "
              << system.appProg().sizeInstrs() * 4 / 1024
              << "KB text; loading...\n";
    system.setup();
    system.warmup(50);
    sim::System::Profiles profiles =
        system.collectProfiles(profile_txns);
    trace::TraceBuffer buf;
    system.run(trace_txns, buf);

    auto misses = [&](core::OptCombo combo) {
        core::PipelineOptions opts;
        opts.combo = combo;
        opts.text_base = config.app_text_base;
        core::Layout layout =
            core::buildLayout(system.appProg(), profiles.app, opts);
        bench::BenchReplay rep(buf, layout, nullptr, pool);
        return rep.icache({64 * 1024, 128, 4},
                          sim::StreamFilter::AppOnly)
            .misses;
    };
    std::uint64_t base = misses(core::OptCombo::Base);
    auto gain = [&](core::OptCombo combo) {
        return 1.0 - static_cast<double>(misses(combo)) /
                         static_cast<double>(base);
    };
    Row row;
    row.text_kb = system.appProg().sizeInstrs() * 4 / 1024;
    row.porder_gain = gain(core::OptCombo::POrder);
    row.chain_gain = gain(core::OptCombo::Chain);
    row.all_gain = gain(core::OptCombo::All);
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Image-scale ablation",
                  "layout gains vs binary size (64KB/128B/4-way)");
    std::uint64_t profile_txns = argc > 1 ? std::atoll(argv[1]) : 500;
    std::uint64_t trace_txns = argc > 2 ? std::atoll(argv[2]) : 350;

    support::TablePrinter table({"image scale", "text size",
                                 "porder gain", "chain gain",
                                 "all gain"});
    double porder_small = 0, porder_big = 0;
    const int threads = bench::threadsFromEnv();
    std::unique_ptr<support::ThreadPool> pool;
    if (threads > 0)
        pool = std::make_unique<support::ThreadPool>(threads);
    const double scales[3] = {0.5, 1.0, 3.0};
    for (double scale : scales) {
        Row r = runScale(scale, profile_txns, trace_txns, pool.get());
        if (scale == scales[0])
            porder_small = r.porder_gain;
        if (scale == scales[2])
            porder_big = r.porder_gain;
        table.addRow({support::fixed(scale, 1) + "x",
                      std::to_string(r.text_kb) + "KB",
                      support::percent(r.porder_gain),
                      support::percent(r.chain_gain),
                      support::percent(r.all_gain)});
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "whole-procedure ordering vs binary size",
        "on Oracle's 27MB text porder alone gave a slight *loss*; on a "
        "small image it can only help more",
        "porder gain " + support::percent(porder_small) +
            " on the small image vs " + support::percent(porder_big) +
            " at 3x scale — roughly flat within simulable sizes, so "
            "the binary-size explanation for the porder deviation "
            "remains a hypothesis (see EXPERIMENTS.md)");
    return 0;
}
