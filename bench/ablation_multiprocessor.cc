/**
 * @file
 * Multiprocessor ablation (paper section 5): "Multiprocessor runs can
 * reduce the impact of code layout optimizations due to the increased
 * impact of data communication misses. For example, a 4-processor run
 * ... yields a 1.25 times improvement (compared to the 1.33 times
 * improvement for the 1-processor run)." We run the workload on a
 * 1-CPU and a 4-CPU system (8 server processes per CPU either way)
 * with the coherence model enabled and compare speedups.
 */

#include "bench/common.hh"
#include "sim/timing.hh"

using namespace spikesim;

namespace {

struct Case
{
    double speedup = 1.0;
    std::uint64_t comm_misses = 0;
};

Case
runCase(int num_cpus, std::uint64_t profile_txns,
        std::uint64_t trace_txns, support::ThreadPool* pool)
{
    sim::SystemConfig config;
    config.num_cpus = num_cpus;
    sim::System system(config);
    std::cerr << "[mp] " << num_cpus << "-cpu system: loading...\n";
    system.setup();
    system.warmup(50);
    sim::System::Profiles profiles =
        system.collectProfiles(profile_txns);
    trace::TraceBuffer buf;
    system.run(trace_txns, buf);

    core::Layout kernel = core::baselineLayout(
        system.kernelProg(), config.kernel_text_base);
    sim::PlatformParams platform = sim::PlatformParams::alpha21164();

    auto cycles = [&](core::OptCombo combo) {
        core::PipelineOptions opts;
        opts.combo = combo;
        opts.text_base = config.app_text_base;
        core::Layout layout =
            core::buildLayout(system.appProg(), profiles.app, opts);
        bench::BenchReplay rep(buf, layout, &kernel, pool);
        auto h = rep.hierarchy(platform.hierarchy, true,
                               /*model_coherence=*/true);
        return std::pair<std::uint64_t, std::uint64_t>(
            sim::nonIdleCycles(h.total, h.instrs, platform,
                               h.fetch_breaks),
            h.total.comm_misses);
    };
    auto [base_cycles, base_comm] = cycles(core::OptCombo::Base);
    auto [opt_cycles, opt_comm] = cycles(core::OptCombo::All);
    (void)opt_comm;
    Case c;
    c.speedup = static_cast<double>(base_cycles) /
                static_cast<double>(opt_cycles);
    c.comm_misses = base_comm;
    return c;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Multiprocessor ablation",
                  "layout speedup on 1 vs 4 processors (21164-like, "
                  "coherence modeled)");
    std::uint64_t profile_txns = argc > 1 ? std::atoll(argv[1]) : 600;
    std::uint64_t trace_txns = argc > 2 ? std::atoll(argv[2]) : 400;

    const int threads = bench::threadsFromEnv();
    std::unique_ptr<support::ThreadPool> pool;
    if (threads > 0)
        pool = std::make_unique<support::ThreadPool>(threads);
    Case up = runCase(1, profile_txns, trace_txns, pool.get());
    Case mp = runCase(4, profile_txns, trace_txns, pool.get());

    support::TablePrinter table(
        {"system", "speedup (all vs base)", "communication misses"});
    table.addRow({"1 processor", "x" + support::fixed(up.speedup, 3),
                  support::withCommas(up.comm_misses)});
    table.addRow({"4 processors", "x" + support::fixed(mp.speedup, 3),
                  support::withCommas(mp.comm_misses)});
    table.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "multiprocessor dilution of layout gains",
        "1.33x on 1 processor -> 1.25x on 4 processors (21164 "
        "hardware)",
        "x" + support::fixed(up.speedup, 3) + " -> x" +
            support::fixed(mp.speedup, 3) + " with " +
            support::withCommas(mp.comm_misses) +
            " communication misses appearing only in the MP run "
            "(direction reproduced; magnitude understated because the "
            "engine emits a sampled data-reference stream -- see "
            "EXPERIMENTS.md)");
    return 0;
}
