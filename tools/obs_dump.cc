/**
 * @file
 * obs_dump — inspect the observability layer's JSON artifacts.
 *
 * usage: obs_dump MANIFEST.json
 *        obs_dump --check-trace TRACE.json
 *
 * The default mode pretty-prints a run manifest (written by a bench's
 * `--manifest-out`): binary, arguments, seed, thread count, per-phase
 * wall/cpu time, embedded BENCH artifacts, and the final metrics
 * snapshot. `--check-trace` validates a Chrome trace-event file
 * (written by `--trace-out`) against the schema Perfetto expects —
 * traceEvents array, string name/cat, numeric pid/tid/ts, complete "X"
 * events with dur >= 0 or balanced "B"/"E" pairs — and additionally
 * round-trips the document through the JSON writer to prove the
 * parse/serialize pair is lossless. Exits non-zero on any violation,
 * so ctest can use it as a smoke gate.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hh"
#include "obs/tracing.hh"
#include "support/panic.hh"

using namespace spikesim;

namespace {

[[noreturn]] void
usage(const std::string& complaint)
{
    support::fatal(complaint +
                   "\nusage: obs_dump MANIFEST.json\n"
                   "       obs_dump --check-trace TRACE.json");
}

std::string
readFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        support::fatal("cannot open " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    if (!is && !is.eof())
        support::fatal("error reading " + path);
    return buf.str();
}

obs::JsonValue
parseFile(const std::string& path)
{
    const std::string text = readFile(path);
    obs::JsonValue doc;
    std::string err;
    if (!obs::parseJson(text, doc, &err))
        support::fatal(path + " is not valid JSON: " + err);
    return doc;
}

/** Validate + round-trip one Chrome trace file; 0 on success. */
int
checkTrace(const std::string& path)
{
    const std::string text = readFile(path);
    obs::JsonValue doc;
    std::string err;
    if (!obs::parseJson(text, doc, &err)) {
        std::cerr << "obs_dump: " << path << " is not valid JSON: "
                  << err << "\n";
        return 1;
    }
    if (!obs::validateChromeTrace(doc, &err)) {
        std::cerr << "obs_dump: " << path
                  << " violates the Chrome trace-event schema: " << err
                  << "\n";
        return 1;
    }
    // Round-trip: our writer and parser must agree on the document.
    obs::JsonValue again;
    if (!obs::parseJson(doc.dump(), again, &err)) {
        std::cerr << "obs_dump: round-trip re-parse failed: " << err
                  << "\n";
        return 1;
    }
    if (!(again == doc)) {
        std::cerr << "obs_dump: round-trip changed the document\n";
        return 1;
    }
    const auto* events = doc.find("traceEvents");
    std::cout << "ok: " << path << " (" << events->array().size()
              << " events, schema valid, round-trip exact)\n";
    return 0;
}

void
printMetricsSection(const obs::JsonValue& metrics)
{
    if (const auto* counters = metrics.find("counters");
        counters != nullptr && counters->isObject() &&
        !counters->members().empty()) {
        std::cout << "counters:\n";
        for (const auto& [name, v] : counters->members())
            std::cout << "  " << name << " = " << obs::jsonNumber(
                             v.isNumber() ? v.number() : 0.0)
                      << "\n";
    }
    if (const auto* gauges = metrics.find("gauges");
        gauges != nullptr && gauges->isObject() &&
        !gauges->members().empty()) {
        std::cout << "gauges:\n";
        for (const auto& [name, v] : gauges->members())
            std::cout << "  " << name << " = " << obs::jsonNumber(
                             v.isNumber() ? v.number() : 0.0)
                      << "\n";
    }
    if (const auto* hists = metrics.find("histograms");
        hists != nullptr && hists->isObject() &&
        !hists->members().empty()) {
        std::cout << "histograms:\n";
        for (const auto& [name, h] : hists->members()) {
            const auto* total = h.find("total");
            const auto* mean = h.find("mean");
            std::cout << "  " << name;
            if (total != nullptr && total->isNumber())
                std::cout << ": " << obs::jsonNumber(total->number())
                          << " samples";
            if (mean != nullptr && mean->isNumber())
                std::cout << ", mean " << obs::jsonNumber(mean->number());
            std::cout << "\n";
        }
    }
}

/** Pretty-print one run manifest; 0 on success. */
int
dumpManifest(const std::string& path)
{
    const obs::JsonValue doc = parseFile(path);
    if (!doc.isObject() || doc.find("spikesim_manifest") == nullptr)
        support::fatal(path + " is not a spikesim run manifest "
                              "(missing \"spikesim_manifest\")");

    if (const auto* binary = doc.find("binary"))
        std::cout << "binary:  " << binary->str() << "\n";
    if (const auto* args = doc.find("args"); args && args->isArray()) {
        std::cout << "args:   ";
        for (const obs::JsonValue& a : args->array())
            std::cout << " " << a.str();
        std::cout << "\n";
    }
    if (const auto* seed = doc.find("seed"); seed && seed->isNumber())
        std::cout << "seed:    " << obs::jsonNumber(seed->number())
                  << "\n";
    if (const auto* threads = doc.find("threads");
        threads && threads->isNumber())
        std::cout << "threads: " << obs::jsonNumber(threads->number())
                  << "\n";
    if (const auto* info = doc.find("info");
        info && info->isObject() && !info->members().empty()) {
        std::cout << "info:\n";
        for (const auto& [k, v] : info->members())
            std::cout << "  " << k << " = "
                      << (v.isString() ? v.str() : v.dump()) << "\n";
    }
    if (const auto* phases = doc.find("phases");
        phases && phases->isArray() && !phases->array().empty()) {
        std::cout << "phases:\n";
        for (const obs::JsonValue& p : phases->array()) {
            const auto* name = p.find("name");
            const auto* wall = p.find("wall_s");
            const auto* cpu = p.find("cpu_s");
            std::printf("  %-24s wall %9.3f s   cpu %9.3f s\n",
                        name != nullptr ? name->str().c_str() : "?",
                        wall != nullptr ? wall->number() : 0.0,
                        cpu != nullptr ? cpu->number() : 0.0);
        }
    }
    if (const auto* artifacts = doc.find("artifacts");
        artifacts && artifacts->isObject() &&
        !artifacts->members().empty()) {
        std::cout << "artifacts:\n";
        for (const auto& [name, v] : artifacts->members())
            std::cout << "  " << name << " (" << v.dump().size()
                      << " bytes)\n";
    }
    if (const auto* metrics = doc.find("metrics");
        metrics && metrics->isObject())
        printMetricsSection(*metrics);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    bool check_trace = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check-trace")
            check_trace = true;
        else if (arg.size() > 1 && arg[0] == '-')
            usage("unknown option '" + arg + "'");
        else if (path.empty())
            path = arg;
        else
            usage("too many arguments");
    }
    if (path.empty())
        usage("missing input file");
    return check_trace ? checkTrace(path) : dumpManifest(path);
}
