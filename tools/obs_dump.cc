/**
 * @file
 * obs_dump — inspect the observability layer's JSON artifacts.
 *
 * usage: obs_dump MANIFEST.json
 *        obs_dump --check-trace TRACE.json
 *        obs_dump --check-bench BENCH.json
 *
 * The default mode pretty-prints a run manifest (written by a bench's
 * `--manifest-out`): binary, arguments, seed, thread count, per-phase
 * wall/cpu time, embedded BENCH artifacts, and the final metrics
 * snapshot. `--check-trace` validates a Chrome trace-event file
 * (written by `--trace-out`) against the schema Perfetto expects —
 * traceEvents array, string name/cat, numeric pid/tid/ts, complete "X"
 * events with dur >= 0 or balanced "B"/"E" pairs — and additionally
 * round-trips the document through the JSON writer to prove the
 * parse/serialize pair is lossless. `--check-bench` validates a bench
 * artifact against the schema its "bench" field names: for
 * "layout_search" every scalar metric, the objective-weight /
 * page-geometry / region-map sub-objects, and the re-rank curve and
 * sweep grid arrays; for "serving" the platform and service-time
 * summaries, the SLO spec, and every load point's base/opt latency +
 * SLO-verdict blocks (multi-tenant section included when present);
 * for "replay", "cachesim", "trace_io", and "obs" every headline
 * timing, speedup, and differential field the micro-benches emit. All
 * checking modes exit non-zero on any violation, so ctest can use them
 * as per-artifact schema gates.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hh"
#include "obs/tracing.hh"
#include "support/panic.hh"

using namespace spikesim;

namespace {

[[noreturn]] void
usage(const std::string& complaint)
{
    support::fatal(complaint +
                   "\nusage: obs_dump MANIFEST.json\n"
                   "       obs_dump --check-trace TRACE.json\n"
                   "       obs_dump --check-bench BENCH.json");
}

std::string
readFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        support::fatal("cannot open " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    if (!is && !is.eof())
        support::fatal("error reading " + path);
    return buf.str();
}

obs::JsonValue
parseFile(const std::string& path)
{
    const std::string text = readFile(path);
    obs::JsonValue doc;
    std::string err;
    if (!obs::parseJson(text, doc, &err))
        support::fatal(path + " is not valid JSON: " + err);
    return doc;
}

/** Validate + round-trip one Chrome trace file; 0 on success. */
int
checkTrace(const std::string& path)
{
    const std::string text = readFile(path);
    obs::JsonValue doc;
    std::string err;
    if (!obs::parseJson(text, doc, &err)) {
        std::cerr << "obs_dump: " << path << " is not valid JSON: "
                  << err << "\n";
        return 1;
    }
    if (!obs::validateChromeTrace(doc, &err)) {
        std::cerr << "obs_dump: " << path
                  << " violates the Chrome trace-event schema: " << err
                  << "\n";
        return 1;
    }
    // Round-trip: our writer and parser must agree on the document.
    obs::JsonValue again;
    if (!obs::parseJson(doc.dump(), again, &err)) {
        std::cerr << "obs_dump: round-trip re-parse failed: " << err
                  << "\n";
        return 1;
    }
    if (!(again == doc)) {
        std::cerr << "obs_dump: round-trip changed the document\n";
        return 1;
    }
    const auto* events = doc.find("traceEvents");
    std::cout << "ok: " << path << " (" << events->array().size()
              << " events, schema valid, round-trip exact)\n";
    return 0;
}

/** Shared state for one bench-artifact validation pass: collects every
 *  violation (not just the first) so a failing run is fixable in one
 *  pass. */
struct BenchChecker
{
    const std::string& path;
    const obs::JsonValue& doc;
    int bad = 0;

    void
    fail(const std::string& what)
    {
        std::cerr << "obs_dump: " << path << ": " << what << "\n";
        ++bad;
    }

    void
    number(const obs::JsonValue& obj, const std::string& where,
           const char* key)
    {
        const obs::JsonValue* v = obj.find(key);
        if (v == nullptr)
            fail(where + " is missing \"" + key + "\"");
        else if (!v->isNumber())
            fail(where + " \"" + key + "\" is not a number");
    }

    void
    boolean(const obs::JsonValue& obj, const std::string& where,
            const char* key)
    {
        const obs::JsonValue* v = obj.find(key);
        if (v == nullptr)
            fail(where + " is missing \"" + key + "\"");
        else if (!v->isBool())
            fail(where + " \"" + key + "\" is not a boolean");
    }

    void
    string(const obs::JsonValue& obj, const std::string& where,
           const char* key)
    {
        const obs::JsonValue* v = obj.find(key);
        if (v == nullptr || !v->isString())
            fail(where + " \"" + key + "\" is not a string");
    }

    /** Sub-object of `parent` whose fields are all numbers. */
    const obs::JsonValue*
    object(const obs::JsonValue& parent, const std::string& where,
           const char* key, std::initializer_list<const char*> fields)
    {
        const obs::JsonValue* v = parent.find(key);
        if (v == nullptr || !v->isObject()) {
            fail(where + " \"" + key + "\" is not an object");
            return nullptr;
        }
        for (const char* f : fields)
            number(*v, where + " \"" + key + "\"", f);
        return v;
    }

    const obs::JsonValue*
    array(const char* key)
    {
        const obs::JsonValue* v = doc.find(key);
        if (v == nullptr || !v->isArray()) {
            fail(std::string("\"") + key + "\" is not an array");
            return nullptr;
        }
        return v;
    }
};

/** Field checks specific to BENCH_layout_search.json. */
void
checkLayoutSearch(BenchChecker& c)
{
    const obs::JsonValue& doc = c.doc;
    const auto fail = [&](const std::string& what) { c.fail(what); };
    const auto number = [&](const obs::JsonValue& obj,
                            const std::string& where, const char* key) {
        c.number(obj, where, key);
    };
    for (const char* key :
         {"seed", "profile_txns", "trace_txns", "epochs", "batch",
          "proxy_evals", "sim_evals", "sim_cache_hits",
          "seed_exttsp_score", "best_exttsp_score", "greedy_all_misses",
          "searched_misses", "greedy_all_itlb4k", "searched_itlb4k",
          "greedy_all_itlb2m", "searched_itlb2m", "seed_objective",
          "best_objective"})
        number(doc, "top level", key);
    const auto object = [&](const char* key,
                            std::initializer_list<const char*> fields) {
        c.object(doc, "top level", key, fields);
    };
    object("rerank_config", {"size_bytes", "line_bytes", "assoc"});
    object("objective_weights", {"icache", "itlb4k", "itlb2m"});
    object("page_geometry", {"region_page_bytes", "itlb_entries"});
    object("region_map", {"num_regions", "num_hot", "hot_segments",
                          "cold_segments", "hot_bytes", "cold_bytes"});
    const auto array = [&](const char* key) { return c.array(key); };
    if (const obs::JsonValue* curve = array("rerank_curve"))
        for (std::size_t i = 0; i < curve->array().size(); ++i) {
            const obs::JsonValue& p = curve->array()[i];
            const std::string where =
                "rerank_curve[" + std::to_string(i) + "]";
            if (!p.isObject()) {
                fail(where + " is not an object");
                continue;
            }
            for (const char* key :
                 {"epoch", "misses", "itlb4k", "objective"})
                number(p, where, key);
        }
    if (const obs::JsonValue* eb = array("epoch_best_exttsp"))
        for (std::size_t i = 0; i < eb->array().size(); ++i)
            if (!eb->array()[i].isNumber())
                fail("epoch_best_exttsp[" + std::to_string(i) +
                     "] is not a number");
    if (const obs::JsonValue* grid = array("grid")) {
        if (grid->array().empty())
            fail("\"grid\" is empty");
        for (std::size_t i = 0; i < grid->array().size(); ++i) {
            const obs::JsonValue& p = grid->array()[i];
            const std::string where = "grid[" + std::to_string(i) + "]";
            if (!p.isObject()) {
                fail(where + " is not an object");
                continue;
            }
            for (const char* key :
                 {"size_kb", "line_b", "base", "greedy_all", "searched"})
                number(p, where, key);
        }
    }
}

/** Field checks specific to BENCH_serving.json (the open-loop serving
 *  bench: layout -> service time -> tail latency). */
void
checkServing(BenchChecker& c)
{
    const obs::JsonValue& doc = c.doc;
    for (const char* key :
         {"seed", "profile_txns", "trace_txns", "requests", "sessions",
          "shards", "queue_bound", "tenants"})
        c.number(doc, "top level", key);
    const obs::JsonValue* workload = doc.find("workload");
    if (workload == nullptr || !workload->isString())
        c.fail("\"workload\" is not a string");
    const obs::JsonValue* platform = c.object(
        doc, "top level", "platform", {"clock_ghz"});
    if (platform != nullptr) {
        const obs::JsonValue* name = platform->find("name");
        if (name == nullptr || !name->isString())
            c.fail("\"platform\" \"name\" is not a string");
    }
    if (const obs::JsonValue* service =
            c.object(doc, "top level", "service", {"requests"})) {
        for (const char* layout : {"base", "opt"})
            c.object(*service, "\"service\"", layout,
                     {"mean_cycles", "p50_cycles", "p99_cycles"});
    }
    c.object(doc, "top level", "slo_spec",
             {"target", "threshold_cycles", "threshold_us", "windows"});
    const auto layoutRun = [&](const obs::JsonValue& parent,
                               const std::string& where,
                               const char* key) {
        const obs::JsonValue* run = c.object(
            parent, where, key,
            {"completed", "dropped", "offered_tps", "sustained_tps",
             "mean_us", "p50_us", "p90_us", "p99_us", "p999_us",
             "max_us", "utilization", "max_queue_depth"});
        if (run == nullptr)
            return;
        const std::string rwhere = where + " \"" + key + "\"";
        const obs::JsonValue* slo = c.object(
            *run, rwhere, "slo",
            {"total", "bad", "attainment", "budget_burn",
             "max_fast_burn", "max_slow_burn", "fast_alert_windows",
             "slow_alert_windows"});
        if (slo != nullptr) {
            c.boolean(*slo, rwhere + " \"slo\"", "met");
            c.string(*slo, rwhere + " \"slo\"", "verdict");
        }
    };
    if (const obs::JsonValue* loads = c.array("loads")) {
        if (loads->array().empty())
            c.fail("\"loads\" is empty");
        for (std::size_t i = 0; i < loads->array().size(); ++i) {
            const obs::JsonValue& p = loads->array()[i];
            const std::string where =
                "loads[" + std::to_string(i) + "]";
            if (!p.isObject()) {
                c.fail(where + " is not an object");
                continue;
            }
            for (const char* key :
                 {"rho", "offered", "horizon_cycles",
                  "p99_improvement_pct"})
                c.number(p, where, key);
            const obs::JsonValue* arrival = p.find("arrival");
            if (arrival == nullptr || !arrival->isString())
                c.fail(where + " \"arrival\" is not a string");
            layoutRun(p, where, "base");
            layoutRun(p, where, "opt");
        }
    }
    // Optional: present only when the bench ran with --tenants > 1.
    if (const obs::JsonValue* mt = doc.find("multi_tenant")) {
        if (!mt->isObject()) {
            c.fail("\"multi_tenant\" is not an object");
        } else {
            for (const char* key :
                 {"tenants", "rho", "service_inflation_base_pct",
                  "service_inflation_opt_pct"})
                c.number(*mt, "\"multi_tenant\"", key);
            layoutRun(*mt, "\"multi_tenant\"", "base");
            layoutRun(*mt, "\"multi_tenant\"", "opt");
        }
    }
}

/** Field checks specific to BENCH_replay.json (the SoA/SIMD replay
 *  micro-bench). Per-kernel keys (soa_avx2_seconds, family_*_seconds,
 *  ...) depend on the host's SIMD support, so only the always-present
 *  headline fields are required. */
void
checkReplay(BenchChecker& c)
{
    const obs::JsonValue& doc = c.doc;
    for (const char* key :
         {"trace_events", "trace_cpus", "oracle_seconds",
          "serial_fused_seconds", "serial_fused_resolve_seconds",
          "serial_fused_replay_seconds", "parallel_fused_seconds",
          "parallel_threads", "soa_scalar_seconds",
          "soa_scalar_resolve_seconds", "soa_scalar_replay_seconds",
          "fused_vs_per_config", "parallel_vs_serial_fused",
          "end_to_end_speedup", "resolve_direct_seconds",
          "resolve_transpose_seconds", "resolve_direct_speedup",
          "icache_grid_configs", "icache_grid_aos_seconds",
          "icache_grid_soa_scalar_seconds",
          "icache_grid_scalar_speedup"})
        c.number(doc, "top level", key);
    c.string(doc, "top level", "simd_kernel");
    c.string(doc, "top level", "simd_kernel_reason");
    c.boolean(doc, "top level", "avx2_available");
    c.boolean(doc, "top level", "avx512_available");
    c.boolean(doc, "top level", "differential_ok");
}

/** Field checks specific to BENCH_cachesim.json. */
void
checkCachesim(BenchChecker& c)
{
    const obs::JsonValue& doc = c.doc;
    for (const char* key :
         {"trace_events", "configs", "line_accesses",
          "per_config_seconds", "per_config_accesses_per_sec",
          "sweep_seconds", "sweep_accesses_per_sec", "sweep_speedup",
          "jobs_serial_seconds", "jobs_parallel_seconds",
          "parallel_threads", "parallel_speedup"})
        c.number(doc, "top level", key);
    c.boolean(doc, "top level", "differential_ok");
}

/** Field checks specific to BENCH_trace_io.json. */
void
checkTraceIo(BenchChecker& c)
{
    const obs::JsonValue& doc = c.doc;
    for (const char* key :
         {"profile_txns", "trace_txns", "trace_events",
          "raw_trace_bytes", "corpus_file_bytes",
          "trace_compression_ratio", "generate_seconds", "save_seconds",
          "load_image_build_seconds", "load_decode_seconds",
          "load_total_seconds", "load_speedup_vs_regeneration"})
        c.number(doc, "top level", key);
    c.boolean(doc, "top level", "speedup_bar_10x_met");
    c.boolean(doc, "top level", "differential_ok");
}

/** Field checks specific to BENCH_obs.json (registry overhead). */
void
checkObs(BenchChecker& c)
{
    const obs::JsonValue& doc = c.doc;
    for (const char* key :
         {"refs", "counter_add_ns", "null_counter_add_ns",
          "gauge_max_ns", "histogram_record_ns", "span_inactive_ns",
          "span_active_ns", "replay_loop_bare_seconds",
          "replay_loop_live_counter_seconds",
          "replay_loop_null_counter_seconds",
          "live_counter_overhead_percent",
          "null_counter_overhead_percent"})
        c.number(doc, "top level", key);
}

/** Schema gate for BENCH_*.json artifacts, dispatching on the "bench"
 *  field; 0 on success. */
int
checkBench(const std::string& path)
{
    const std::string text = readFile(path);
    obs::JsonValue doc;
    std::string err;
    if (!obs::parseJson(text, doc, &err)) {
        std::cerr << "obs_dump: " << path << " is not valid JSON: "
                  << err << "\n";
        return 1;
    }
    if (!doc.isObject()) {
        std::cerr << "obs_dump: " << path
                  << ": top level is not an object\n";
        return 1;
    }
    BenchChecker c{path, doc};
    const obs::JsonValue* bench = doc.find("bench");
    const std::string kind =
        bench != nullptr && bench->isString() ? bench->str() : "";
    std::string detail;
    if (kind == "layout_search") {
        checkLayoutSearch(c);
        if (const obs::JsonValue* grid = doc.find("grid");
            grid != nullptr && grid->isArray())
            detail = std::to_string(grid->array().size()) +
                     " grid points";
    } else if (kind == "serving") {
        checkServing(c);
        if (const obs::JsonValue* loads = doc.find("loads");
            loads != nullptr && loads->isArray())
            detail = std::to_string(loads->array().size()) +
                     " load points";
    } else if (kind == "replay") {
        checkReplay(c);
        if (const obs::JsonValue* ev = doc.find("trace_events");
            ev != nullptr && ev->isNumber())
            detail = obs::jsonNumber(ev->number()) + " trace events";
    } else if (kind == "cachesim") {
        checkCachesim(c);
        if (const obs::JsonValue* n = doc.find("configs");
            n != nullptr && n->isNumber())
            detail = obs::jsonNumber(n->number()) + " configs";
    } else if (kind == "trace_io") {
        checkTraceIo(c);
        if (const obs::JsonValue* n = doc.find("trace_events");
            n != nullptr && n->isNumber())
            detail = obs::jsonNumber(n->number()) + " trace events";
    } else if (kind == "obs") {
        checkObs(c);
        if (const obs::JsonValue* n = doc.find("refs");
            n != nullptr && n->isNumber())
            detail = obs::jsonNumber(n->number()) + " refs";
    } else {
        c.fail("\"bench\" is not a recognized bench name "
               "(layout_search, serving, replay, cachesim, trace_io, "
               "obs)");
    }
    // Round-trip: the artifact must survive our writer/parser pair.
    obs::JsonValue again;
    if (!obs::parseJson(doc.dump(), again, &err) || !(again == doc))
        c.fail("round-trip through the JSON writer changed the document");
    if (c.bad != 0)
        return 1;
    std::cout << "ok: " << path << " (" << kind
              << " bench schema valid, " << detail
              << ", round-trip exact)\n";
    return 0;
}

void
printMetricsSection(const obs::JsonValue& metrics)
{
    if (const auto* counters = metrics.find("counters");
        counters != nullptr && counters->isObject() &&
        !counters->members().empty()) {
        std::cout << "counters:\n";
        for (const auto& [name, v] : counters->members())
            std::cout << "  " << name << " = " << obs::jsonNumber(
                             v.isNumber() ? v.number() : 0.0)
                      << "\n";
    }
    if (const auto* gauges = metrics.find("gauges");
        gauges != nullptr && gauges->isObject() &&
        !gauges->members().empty()) {
        std::cout << "gauges:\n";
        for (const auto& [name, v] : gauges->members())
            std::cout << "  " << name << " = " << obs::jsonNumber(
                             v.isNumber() ? v.number() : 0.0)
                      << "\n";
    }
    if (const auto* hists = metrics.find("histograms");
        hists != nullptr && hists->isObject() &&
        !hists->members().empty()) {
        std::cout << "histograms:\n";
        for (const auto& [name, h] : hists->members()) {
            const auto* total = h.find("total");
            const auto* mean = h.find("mean");
            std::cout << "  " << name;
            if (total != nullptr && total->isNumber())
                std::cout << ": " << obs::jsonNumber(total->number())
                          << " samples";
            if (mean != nullptr && mean->isNumber())
                std::cout << ", mean " << obs::jsonNumber(mean->number());
            std::cout << "\n";
        }
    }
    if (const auto* sketches = metrics.find("sketches");
        sketches != nullptr && sketches->isObject() &&
        !sketches->members().empty()) {
        std::cout << "sketches:\n";
        for (const auto& [name, s] : sketches->members()) {
            if (!s.isObject())
                continue;
            std::cout << "  " << name;
            if (const auto* count = s.find("count");
                count != nullptr && count->isNumber())
                std::cout << ": " << obs::jsonNumber(count->number())
                          << " samples";
            for (const char* q : {"p50", "p99", "p999"})
                if (const auto* v = s.find(q);
                    v != nullptr && v->isNumber())
                    std::cout << ", " << q << " "
                              << obs::jsonNumber(v->number());
            std::cout << "\n";
        }
    }
}

/** Pretty-print one run manifest; 0 on success. */
int
dumpManifest(const std::string& path)
{
    const obs::JsonValue doc = parseFile(path);
    if (!doc.isObject() || doc.find("spikesim_manifest") == nullptr)
        support::fatal(path + " is not a spikesim run manifest "
                              "(missing \"spikesim_manifest\")");

    if (const auto* binary = doc.find("binary"))
        std::cout << "binary:  " << binary->str() << "\n";
    if (const auto* args = doc.find("args"); args && args->isArray()) {
        std::cout << "args:   ";
        for (const obs::JsonValue& a : args->array())
            std::cout << " " << a.str();
        std::cout << "\n";
    }
    if (const auto* seed = doc.find("seed"); seed && seed->isNumber())
        std::cout << "seed:    " << obs::jsonNumber(seed->number())
                  << "\n";
    if (const auto* threads = doc.find("threads");
        threads && threads->isNumber())
        std::cout << "threads: " << obs::jsonNumber(threads->number())
                  << "\n";
    if (const auto* info = doc.find("info");
        info && info->isObject() && !info->members().empty()) {
        std::cout << "info:\n";
        for (const auto& [k, v] : info->members())
            std::cout << "  " << k << " = "
                      << (v.isString() ? v.str() : v.dump()) << "\n";
    }
    if (const auto* phases = doc.find("phases");
        phases && phases->isArray() && !phases->array().empty()) {
        std::cout << "phases:\n";
        for (const obs::JsonValue& p : phases->array()) {
            const auto* name = p.find("name");
            const auto* wall = p.find("wall_s");
            const auto* cpu = p.find("cpu_s");
            std::printf("  %-24s wall %9.3f s   cpu %9.3f s\n",
                        name != nullptr ? name->str().c_str() : "?",
                        wall != nullptr ? wall->number() : 0.0,
                        cpu != nullptr ? cpu->number() : 0.0);
        }
    }
    if (const auto* artifacts = doc.find("artifacts");
        artifacts && artifacts->isObject() &&
        !artifacts->members().empty()) {
        std::cout << "artifacts:\n";
        for (const auto& [name, v] : artifacts->members())
            std::cout << "  " << name << " (" << v.dump().size()
                      << " bytes)\n";
    }
    if (const auto* timelines = doc.find("timeline");
        timelines && timelines->isArray() &&
        !timelines->array().empty()) {
        std::cout << "timelines:\n";
        for (const obs::JsonValue& t : timelines->array()) {
            if (!t.isObject())
                continue;
            const auto* name = t.find("name");
            const auto* total = t.find("total_windows");
            std::cout << "  "
                      << (name != nullptr && name->isString()
                              ? name->str()
                              : std::string("?"));
            if (total != nullptr && total->isNumber())
                std::cout << " (" << obs::jsonNumber(total->number())
                          << " windows)";
            std::cout << "\n";
        }
    }
    if (const auto* slos = doc.find("slo");
        slos && slos->isArray() && !slos->array().empty()) {
        std::cout << "slo verdicts:\n";
        for (const obs::JsonValue& s : slos->array()) {
            if (!s.isObject())
                continue;
            const auto* name = s.find("name");
            const auto* verdict = s.find("verdict");
            const auto* attainment = s.find("attainment");
            std::cout << "  "
                      << (name != nullptr && name->isString()
                              ? name->str()
                              : std::string("?"))
                      << ": "
                      << (verdict != nullptr && verdict->isString()
                              ? verdict->str()
                              : std::string("?"));
            if (attainment != nullptr && attainment->isNumber())
                std::cout << " (attainment "
                          << obs::jsonNumber(attainment->number())
                          << ")";
            std::cout << "\n";
        }
    }
    if (const auto* metrics = doc.find("metrics");
        metrics && metrics->isObject())
        printMetricsSection(*metrics);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    bool check_trace = false;
    bool check_bench = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check-trace")
            check_trace = true;
        else if (arg == "--check-bench")
            check_bench = true;
        else if (arg.size() > 1 && arg[0] == '-')
            usage("unknown option '" + arg + "'");
        else if (path.empty())
            path = arg;
        else
            usage("too many arguments");
    }
    if (path.empty())
        usage("missing input file");
    if (check_trace && check_bench)
        usage("--check-trace and --check-bench are exclusive");
    if (check_trace)
        return checkTrace(path);
    if (check_bench)
        return checkBench(path);
    return dumpManifest(path);
}
