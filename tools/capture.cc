/**
 * @file
 * capture — generate the OLTP workload once and persist it as a corpus
 * file that every figure bench can then load instead of re-simulating
 * (see sim/corpus.hh and DESIGN.md §10).
 *
 * usage: capture [--dir DIR] [--accounts N] [--force]
 *                [profile_txns] [trace_txns]
 *
 *   --dir DIR      corpus directory (default: $SPIKESIM_CORPUS_DIR,
 *                  else the current directory)
 *   --accounts N   total TPC-B accounts; scales accounts-per-branch
 *                  across the default 40 branches
 *   --force        re-capture even if the corpus file already exists
 *
 * profile_txns / trace_txns default to the bench defaults (800 / 500),
 * so a plain `capture --dir D` primes the cache for a default figure
 * sweep.
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "sim/corpus.hh"
#include "support/panic.hh"

using namespace spikesim;

namespace {

[[noreturn]] void
usage(const std::string& complaint)
{
    support::fatal(complaint +
                   "\nusage: capture [--dir DIR] [--accounts N] "
                   "[--force] [profile_txns] [trace_txns]");
}

std::uint64_t
parseCount(const std::string& arg, const char* what)
{
    if (arg.empty() || arg[0] == '-' || arg[0] == '+')
        usage(std::string(what) + " must be a non-negative integer, "
                                  "got '" + arg + "'");
    for (char c : arg)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            usage(std::string(what) + " is not a number: '" + arg + "'");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(arg.c_str(), &end, 10);
    if (errno == ERANGE || end != arg.c_str() + arg.size())
        usage(std::string(what) + " is out of range: '" + arg + "'");
    return v;
}

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char** argv)
{
    std::string dir = ".";
    if (const char* env = std::getenv("SPIKESIM_CORPUS_DIR"))
        dir = env;
    bool force = false;
    std::uint64_t accounts = 0;
    std::vector<std::string> positional;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir") {
            if (i + 1 >= argc)
                usage("--dir needs a directory argument");
            dir = argv[++i];
        } else if (arg.rfind("--dir=", 0) == 0) {
            dir = arg.substr(6);
        } else if (arg == "--accounts") {
            if (i + 1 >= argc)
                usage("--accounts needs a count argument");
            accounts = parseCount(argv[++i], "--accounts");
        } else if (arg.rfind("--accounts=", 0) == 0) {
            accounts = parseCount(arg.substr(11), "--accounts");
        } else if (arg == "--force") {
            force = true;
        } else if (arg.size() > 1 && arg[0] == '-' &&
                   !std::isdigit(static_cast<unsigned char>(arg[1]))) {
            usage("unknown option '" + arg + "'");
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() > 2)
        usage("too many arguments");

    sim::CorpusParams params;
    if (positional.size() > 0)
        params.profile_txns =
            parseCount(positional[0], "profile_txns");
    if (positional.size() > 1)
        params.trace_txns = parseCount(positional[1], "trace_txns");
    if (accounts > 0) {
        const int branches = params.config.tpcb.branches;
        params.config.tpcb.accounts_per_branch = std::max(
            1, static_cast<int>(accounts /
                                static_cast<std::uint64_t>(branches)));
    }

    const std::string path =
        (std::filesystem::path(dir) / sim::corpusFileName(params))
            .string();
    std::error_code ec;
    if (!force && std::filesystem::exists(path, ec)) {
        std::cout << "corpus already present: " << path
                  << " (use --force to re-capture)\n";
        return 0;
    }

    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    sim::GeneratedWorkload g = sim::generateWorkload(params, &std::cerr);
    const auto t1 = clock::now();
    std::filesystem::create_directories(dir, ec);
    const sim::CorpusStats stats =
        sim::saveCorpus(params, *g.profiles, g.buf, path);
    const auto t2 = clock::now();

    std::cout << "captured corpus: " << path << "\n"
              << "  events:        " << stats.events << "\n"
              << "  raw trace:     " << stats.raw_bytes << " bytes\n"
              << "  file size:     " << stats.file_bytes << " bytes\n"
              << "  compression:   " << stats.ratio
              << "x (trace section)\n"
              << "  capture time:  " << seconds(t0, t1) << " s\n"
              << "  write time:    " << seconds(t1, t2) << " s\n";
    return 0;
}
