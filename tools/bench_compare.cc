/**
 * @file
 * Cross-run regression gate for the BENCH_*.json artifacts and run
 * manifests: load a baseline and a candidate document (or two
 * directories of them), align every leaf value by its dotted JSON
 * path — array rows are keyed by their identifying members (load
 * points by rho+arrival, cache grids by geometry, rerank curves by
 * epoch, SLO verdicts by name), not by position — and apply a
 * per-metric noise-aware threshold: configuration fields must match
 * exactly, wall-clock timings get a wide band, deterministic simulated
 * metrics a tight one, and each band knows which direction is worse
 * (p99 regressing up is a violation; improving is not). Exits 0 when
 * the candidate holds the line, 1 on any regression, 2 on usage or I/O
 * errors — the shape ctest and CI gates want.
 *
 * usage: bench_compare [--tolerance PCT] [--list] BASELINE CANDIDATE
 *
 *   --tolerance PCT  scale every non-exact band so the default 5%%
 *                    tier becomes PCT (wall-clock tiers scale
 *                    proportionally)
 *   --list           print every compared path, not just violations
 *
 * BASELINE and CANDIDATE are bench artifacts (a "bench" field), run
 * manifests ("spikesim_manifest"; seed/threads and the embedded
 * artifacts are gated, info/phases/metrics are informational), or
 * directories (aligned by file name; every baseline *.json must have a
 * candidate partner).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"

using spikesim::obs::JsonValue;
using spikesim::obs::jsonNumber;
using spikesim::obs::parseJson;

namespace {

enum class Direction
{
    Info,         ///< never gated; shown under --list only
    Exact,        ///< must match exactly (config, counts, verdicts)
    LowerBetter,  ///< regression = candidate above the band
    HigherBetter, ///< regression = candidate below the band
    Symmetric,    ///< regression = candidate outside the band
};

/** One threshold rule: first glob match against the dotted path wins;
 *  `*` crosses dots. rel is a fraction of |baseline|, abs_slack an
 *  absolute floor (covers zero baselines). */
struct Rule
{
    const char* pattern;
    Direction dir;
    double rel = 0.0;
    double abs_slack = 0.0;
};

/**
 * The ordered rule table. Tiers: configuration and anything seeded is
 * exact (these benches are byte-identical per seed, so same-seed
 * reruns must agree bit for bit); wall-clock timings get 35% — they
 * share machines with other tests; derived simulated metrics
 * (latencies, rates, burn) get 5% with direction; everything numeric
 * defaults to a symmetric 5%.
 */
constexpr Rule kRules[] = {
    // Identity / environment: informational, never gated.
    {"args*", Direction::Info},
    {"binary", Direction::Info},
    {"*simd_kernel*", Direction::Info},
    {"calibration*", Direction::Info},
    {"*perf.*", Direction::Info},
    {"phases*", Direction::Info},
    {"*reason*", Direction::Info},
    {"platform*", Direction::Info},
    {"*platform.name", Direction::Info},
    {"*utilization", Direction::Info},
    {"*parallel_threads", Direction::Info},
    {"*trace_cpus", Direction::Info},

    // Configuration and per-seed-deterministic identity: exact.
    {"bench", Direction::Exact},
    {"*workload", Direction::Exact},
    {"*arrival", Direction::Exact},
    {"*verdict", Direction::Exact},
    {"*met", Direction::Exact},
    {"seed", Direction::Exact},
    {"threads", Direction::Exact},
    {"*_txns", Direction::Exact},
    {"*requests", Direction::Exact},
    {"*sessions", Direction::Exact},
    {"*shards", Direction::Exact},
    {"*queue_bound", Direction::Exact},
    {"*tenants", Direction::Exact},
    {"*trace_events", Direction::Exact},
    {"*configs", Direction::Exact},
    {"*line_accesses", Direction::Exact},
    {"*epochs", Direction::Exact},
    {"*batch", Direction::Exact},
    {"*differential_ok", Direction::Exact},
    {"*_available", Direction::Exact},
    {"*speedup_bar_10x_met", Direction::Exact},
    {"*offered", Direction::Exact},
    {"*horizon_cycles", Direction::Exact},
    {"*_bytes", Direction::Exact},
    {"*clock_ghz", Direction::Exact},
    {"*threshold*", Direction::Exact},
    {"*target", Direction::Exact},
    {"*.rho", Direction::Exact},
    {"rho", Direction::Exact},
    {"*alert_windows", Direction::LowerBetter, 0.05, 2.0},
    {"*windows", Direction::Exact},

    // Wall-clock measurements: wide bands, directional.
    {"*_seconds", Direction::LowerBetter, 0.35, 0.05},
    {"*_ns", Direction::LowerBetter, 0.35, 50.0},
    {"*_per_sec", Direction::HigherBetter, 0.35, 0.0},
    {"*overhead_percent", Direction::LowerBetter, 0.35, 2.0},

    // Deterministic simulated metrics: tight directional bands.
    {"*_us", Direction::LowerBetter, 0.05, 0.5},
    {"*_cycles", Direction::LowerBetter, 0.05, 0.0},
    {"*misses*", Direction::LowerBetter, 0.05, 0.0},
    {"*_mpki", Direction::LowerBetter, 0.05, 0.01},
    {"*dropped", Direction::LowerBetter, 0.05, 10.0},
    {"*inflation*", Direction::LowerBetter, 0.05, 0.5},
    {"*_burn", Direction::LowerBetter, 0.05, 0.05},
    {"*max_queue_depth", Direction::LowerBetter, 0.05, 4.0},
    {"*_tps", Direction::HigherBetter, 0.05, 0.0},
    {"*improvement*", Direction::HigherBetter, 0.05, 1.0},
    {"*speedup*", Direction::HigherBetter, 0.05, 0.0},
    {"*completed", Direction::HigherBetter, 0.05, 0.0},
    {"*attainment", Direction::HigherBetter, 0.01, 0.005},
    {"*_ratio", Direction::HigherBetter, 0.10, 0.0},

    // Everything else numeric: symmetric 5%.
    {"*", Direction::Symmetric, 0.05, 1e-9},
};

/** Classic glob where `*` matches any run of characters (dots too). */
bool
globMatch(const char* p, const char* s)
{
    while (*p != '\0') {
        if (*p == '*') {
            ++p;
            if (*p == '\0')
                return true;
            for (; *s != '\0'; ++s)
                if (globMatch(p, s))
                    return true;
            return false;
        }
        if (*s == '\0' || *s != *p)
            return false;
        ++p;
        ++s;
    }
    return *s == '\0';
}

const Rule&
ruleFor(const std::string& path)
{
    for (const Rule& r : kRules)
        if (globMatch(r.pattern, path.c_str()))
            return r;
    return kRules[sizeof(kRules) / sizeof(kRules[0]) - 1];
}

/** One flattened leaf: dotted path -> scalar value. */
struct Leaf
{
    std::string path;
    const JsonValue* value;
};

/** Identifying members for key-aligned array rows, by array name. */
std::vector<const char*>
alignKeys(const std::string& array_name)
{
    if (array_name == "loads")
        return {"rho", "arrival"};
    if (array_name == "grid")
        return {"size_kb", "line_b"};
    if (array_name == "rerank_curve")
        return {"epoch"};
    if (array_name == "slo")
        return {"name"};
    return {};
}

std::string
scalarText(const JsonValue& v)
{
    switch (v.kind()) {
    case JsonValue::Kind::Null:
        return "null";
    case JsonValue::Kind::Bool:
        return v.boolean() ? "true" : "false";
    case JsonValue::Kind::Number:
        return jsonNumber(v.number());
    case JsonValue::Kind::String:
        return v.str();
    default:
        return v.dump();
    }
}

void
flatten(const JsonValue& v, const std::string& path,
        const std::string& leaf_name, std::vector<Leaf>& out)
{
    if (v.isObject()) {
        for (const auto& [key, member] : v.members())
            flatten(member, path.empty() ? key : path + "." + key, key,
                    out);
        return;
    }
    if (v.isArray()) {
        const std::vector<const char*> keys = alignKeys(leaf_name);
        for (std::size_t i = 0; i < v.array().size(); ++i) {
            const JsonValue& row = v.array()[i];
            std::string tag;
            if (!keys.empty() && row.isObject()) {
                for (const char* k : keys) {
                    const JsonValue* kv = row.find(k);
                    if (kv == nullptr)
                        continue;
                    if (!tag.empty())
                        tag += ',';
                    tag += std::string(k) + "=" + scalarText(*kv);
                }
            }
            if (tag.empty())
                tag = std::to_string(i);
            flatten(row, path + "[" + tag + "]", leaf_name, out);
        }
        return;
    }
    out.push_back({path, &v});
}

struct CompareStats
{
    std::size_t compared = 0;
    std::size_t violations = 0;
    bool list = false;
    double scale = 1.0; ///< --tolerance PCT / 5
};

void
violation(CompareStats& st, const std::string& path,
          const std::string& what)
{
    ++st.violations;
    std::cout << "REGRESSION " << path << ": " << what << "\n";
}

void
compareNumbers(CompareStats& st, const std::string& path, const Rule& r,
               double base, double cand)
{
    const double rel = r.rel * st.scale;
    const double slack = r.abs_slack * st.scale;
    const double band = std::max(std::abs(base) * rel, slack);
    const double delta = cand - base;
    const auto pct = [&](double d) {
        return base != 0.0
                   ? jsonNumber(d / std::abs(base) * 100.0) + "%"
                   : jsonNumber(d) + " abs";
    };
    bool ok = true;
    switch (r.dir) {
    case Direction::Exact:
        ok = base == cand;
        break;
    case Direction::LowerBetter:
        ok = cand <= base + band;
        break;
    case Direction::HigherBetter:
        ok = cand >= base - band;
        break;
    case Direction::Symmetric:
        ok = std::abs(delta) <= band;
        break;
    case Direction::Info:
        break;
    }
    if (!ok) {
        if (r.dir == Direction::Exact)
            violation(st, path,
                      "expected exactly " + jsonNumber(base) + ", got " +
                          jsonNumber(cand));
        else
            violation(st, path,
                      "baseline " + jsonNumber(base) + " candidate " +
                          jsonNumber(cand) + " (" + pct(delta) +
                          ", allowed band " + pct(band) + ")");
    } else if (st.list) {
        std::cout << "ok         " << path << ": " << jsonNumber(base)
                  << " -> " << jsonNumber(cand) << "\n";
    }
}

void
compareDocs(CompareStats& st, const std::string& label,
            const JsonValue& base, const JsonValue& cand);

/** Reduce a manifest to the subtree the gate covers: seed, threads,
 *  and the embedded artifacts. info/phases/metrics stay informational
 *  (they carry wall-clock and host-specific material). */
JsonValue
manifestGated(const JsonValue& doc)
{
    JsonValue out(JsonValue::Kind::Object);
    for (const char* key : {"seed", "threads", "artifacts"})
        if (const JsonValue* v = doc.find(key))
            out.members().emplace_back(key, *v);
    return out;
}

void
compareDocs(CompareStats& st, const std::string& label,
            const JsonValue& base, const JsonValue& cand)
{
    const bool manifest = base.find("spikesim_manifest") != nullptr;
    const JsonValue gated_base = manifest ? manifestGated(base) : base;
    const JsonValue gated_cand = manifest ? manifestGated(cand) : cand;

    std::vector<Leaf> base_leaves;
    std::vector<Leaf> cand_leaves;
    flatten(gated_base, "", "", base_leaves);
    flatten(gated_cand, "", "", cand_leaves);

    for (const Leaf& bl : base_leaves) {
        const std::string path =
            label.empty() ? bl.path : label + ":" + bl.path;
        const Rule& rule = ruleFor(bl.path);
        if (rule.dir == Direction::Info) {
            if (st.list)
                std::cout << "info       " << path << ": "
                          << scalarText(*bl.value) << "\n";
            continue;
        }
        ++st.compared;
        const auto it = std::find_if(
            cand_leaves.begin(), cand_leaves.end(),
            [&](const Leaf& cl) { return cl.path == bl.path; });
        if (it == cand_leaves.end()) {
            violation(st, path, "missing from candidate");
            continue;
        }
        const JsonValue& bv = *bl.value;
        const JsonValue& cv = *it->value;
        if (bv.isNumber() && cv.isNumber()) {
            compareNumbers(st, path, rule, bv.number(), cv.number());
        } else if (bv == cv) {
            if (st.list)
                std::cout << "ok         " << path << ": "
                          << scalarText(bv) << "\n";
        } else {
            violation(st, path,
                      "expected " + scalarText(bv) + ", got " +
                          scalarText(cv));
        }
    }
}

bool
loadDoc(const std::string& path, JsonValue& out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::cerr << "bench_compare: cannot read " << path << "\n";
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string err;
    if (!parseJson(buf.str(), out, &err)) {
        std::cerr << "bench_compare: " << path << " is not valid JSON: "
                  << err << "\n";
        return false;
    }
    return true;
}

[[noreturn]] void
usage(const std::string& complaint)
{
    std::cerr << "bench_compare: " << complaint
              << "\nusage: bench_compare [--tolerance PCT] [--list]"
                 " BASELINE CANDIDATE\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char** argv)
{
    CompareStats st;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            st.list = true;
        } else if (arg == "--tolerance") {
            if (i + 1 >= argc)
                usage("--tolerance needs a percentage");
            char* end = nullptr;
            const double pct = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || pct <= 0.0)
                usage(std::string("--tolerance must be a positive "
                                  "percentage, got '") +
                      argv[i] + "'");
            st.scale = pct / 5.0;
        } else if (arg.rfind("--", 0) == 0) {
            usage("unknown option '" + arg + "'");
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2)
        usage("expected exactly BASELINE and CANDIDATE");
    const std::string& base_path = positional[0];
    const std::string& cand_path = positional[1];

    namespace fs = std::filesystem;
    std::vector<std::pair<std::string, std::string>> pairs;
    std::vector<std::string> labels;
    const bool base_dir = fs::is_directory(base_path);
    const bool cand_dir = fs::is_directory(cand_path);
    if (base_dir != cand_dir)
        usage("BASELINE and CANDIDATE must both be files or both be "
              "directories");
    if (base_dir) {
        std::vector<std::string> names;
        for (const auto& e : fs::directory_iterator(base_path))
            if (e.is_regular_file() &&
                e.path().extension() == ".json")
                names.push_back(e.path().filename().string());
        std::sort(names.begin(), names.end());
        if (names.empty())
            usage("no *.json files in " + base_path);
        for (const std::string& n : names) {
            pairs.emplace_back((fs::path(base_path) / n).string(),
                               (fs::path(cand_path) / n).string());
            labels.push_back(n);
        }
    } else {
        pairs.emplace_back(base_path, cand_path);
        labels.emplace_back("");
    }

    for (std::size_t i = 0; i < pairs.size(); ++i) {
        JsonValue base;
        JsonValue cand;
        if (!fs::exists(pairs[i].second)) {
            std::cout << "REGRESSION " << labels[i]
                      << ": candidate file missing ("
                      << pairs[i].second << ")\n";
            ++st.violations;
            continue;
        }
        if (!loadDoc(pairs[i].first, base) ||
            !loadDoc(pairs[i].second, cand))
            return 2;
        compareDocs(st, labels[i], base, cand);
    }

    std::cout << "bench_compare: " << st.compared << " values compared, "
              << st.violations
              << (st.violations == 1 ? " regression\n" : " regressions\n");
    return st.violations == 0 ? 0 : 1;
}
