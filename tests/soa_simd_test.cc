/**
 * @file
 * Unit and differential tests for the SoA resolved trace (sim/soa.hh)
 * and the SIMD kernel dispatch (sim/kernels.hh):
 *
 *  - toSoA is a field-exact transpose: columns, partition offsets,
 *    data refs and totals all match the AoS source.
 *  - SPIKESIM_SIMD parsing is strict — unset/empty means Auto, "0",
 *    "1" and "2" force a kernel, and anything else is a fatal user
 *    error (death-tested, since support::fatal exits).
 *  - resolveKernel: explicit modes win over the environment, Auto
 *    consults the env then the startup calibration, every choice
 *    carries a human-readable reason, and forcing a vector kernel on
 *    a host that cannot run it dies instead of silently falling back
 *    (both the AVX2 and AVX-512 tiers).
 *  - The i-cache kernels match the scalar Replayer oracle on geometry
 *    the vector fast paths do NOT cover (3-way and 6-way sets take the
 *    generic scalar probe inside the vector builds) mixed with
 *    geometry they do (direct-mapped, 4-way, 8-way), across several
 *    line sizes in one fused column — so group construction, the
 *    span-segmented DM probes, and the per-assoc dispatch all get
 *    exercised in a single replay, under every runnable kernel.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/layout.hh"
#include "program/builder.hh"
#include "sim/engine.hh"
#include "support/rng.hh"
#include "support/threadpool.hh"

namespace spikesim::sim {
namespace {

using program::EdgeKind;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

/** RAII guard: sets/unsets SPIKESIM_SIMD and restores it on exit. */
class SimdEnvGuard
{
  public:
    explicit SimdEnvGuard(const char* value)
    {
        const char* old = std::getenv("SPIKESIM_SIMD");
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        if (value == nullptr)
            ::unsetenv("SPIKESIM_SIMD");
        else
            ::setenv("SPIKESIM_SIMD", value, 1);
    }

    ~SimdEnvGuard()
    {
        if (had_old_)
            ::setenv("SPIKESIM_SIMD", old_.c_str(), 1);
        else
            ::unsetenv("SPIKESIM_SIMD");
    }

  private:
    bool had_old_ = false;
    std::string old_;
};

Program
randomProgram(const char* name, int blocks, std::uint32_t seed)
{
    support::Pcg32 rng(seed);
    Program p(name);
    for (int i = 0; i < blocks; i += 2) {
        ProcedureBuilder b("p" + std::to_string(i));
        auto a = b.addBlock(1 + rng.nextBounded(32),
                            Terminator::FallThrough);
        auto r = b.addBlock(1 + rng.nextBounded(32), Terminator::Return);
        b.addEdge(a, r, EdgeKind::FallThrough);
        p.addProcedure(b.build());
    }
    EXPECT_EQ(p.validate(), "");
    return p;
}

trace::TraceBuffer
randomTrace(int blocks, int events, int num_cpus, std::uint32_t seed)
{
    support::Pcg32 rng(seed);
    trace::TraceBuffer buf;
    std::vector<trace::ExecContext> ctx(num_cpus);
    std::vector<std::uint32_t> cur(num_cpus, 0);
    for (int c = 0; c < num_cpus; ++c)
        ctx[c].cpu = static_cast<std::uint8_t>(c);
    for (int i = 0; i < events; ++i) {
        int c = static_cast<int>(
            rng.nextBounded(static_cast<std::uint32_t>(num_cpus)));
        if (rng.nextBool(0.15))
            cur[c] = rng.nextBounded(static_cast<std::uint32_t>(blocks));
        else
            cur[c] = static_cast<std::uint32_t>(
                (cur[c] + 1) % static_cast<std::uint32_t>(blocks));
        trace::ImageId image = rng.nextBool(0.3)
                                   ? trace::ImageId::Kernel
                                   : trace::ImageId::App;
        buf.onBlock(ctx[c], image, cur[c]);
        if (rng.nextBool(0.1))
            buf.onData(ctx[c], 0x80000000ULL + rng.nextBounded(1 << 14));
    }
    return buf;
}

/** One self-contained random workload. */
struct Workload
{
    Program app;
    Program kern;
    core::Layout app_layout;
    core::Layout kern_layout;
    trace::TraceBuffer buf;
    Replayer rep;

    Workload(int num_cpus, std::uint32_t seed)
        : app(randomProgram("app", 120, seed)),
          kern(randomProgram("kern", 120, seed + 1)),
          app_layout(core::baselineLayout(app, 0)),
          kern_layout(core::baselineLayout(kern, 0x400000)),
          buf(randomTrace(120, 20000, num_cpus, seed + 2)),
          rep(buf, app_layout, &kern_layout)
    {
    }
};

TEST(ResolvedTraceSoA, TransposeIsFieldExact)
{
    Workload w(4, 7001);
    // include_data so the data_refs column and Data owners are present.
    ResolvedTrace trace = w.rep.resolve(StreamFilter::Combined, true);
    ResolvedTraceSoA soa = toSoA(trace);

    ASSERT_EQ(soa.size(), trace.refs.size());
    ASSERT_EQ(soa.bytes.size(), trace.refs.size());
    ASSERT_EQ(soa.owner.size(), trace.refs.size());
    ASSERT_EQ(soa.flags.size(), trace.refs.size());
    for (std::size_t i = 0; i < trace.refs.size(); ++i) {
        EXPECT_EQ(soa.addr[i], trace.refs[i].addr) << i;
        EXPECT_EQ(soa.bytes[i], trace.refs[i].bytes) << i;
        EXPECT_EQ(soa.owner[i],
                  static_cast<std::uint8_t>(trace.refs[i].owner))
            << i;
        EXPECT_EQ(soa.flags[i], trace.refs[i].flags) << i;
    }

    ASSERT_EQ(soa.cpu_begin, trace.cpu_begin);
    EXPECT_EQ(soa.num_cpus, trace.num_cpus);
    EXPECT_EQ(soa.instr_events, trace.instr_events);
    EXPECT_EQ(soa.instrs, trace.instrs);

    ASSERT_EQ(soa.data_refs.size(), trace.data_refs.size());
    for (std::size_t i = 0; i < trace.data_refs.size(); ++i) {
        EXPECT_EQ(soa.data_refs[i].addr, trace.data_refs[i].addr);
        EXPECT_EQ(soa.data_refs[i].cpu, trace.data_refs[i].cpu);
    }

    // cpuRange agrees with the AoS span accessor, including the
    // out-of-range behavior on both sides.
    for (int c = 0; c < trace.num_cpus; ++c) {
        auto [b, e] = soa.cpuRange(c);
        auto span = trace.cpuRefs(c);
        EXPECT_EQ(e - b, span.size()) << "cpu " << c;
        EXPECT_EQ(b, trace.cpu_begin[static_cast<std::size_t>(c)]);
    }
    EXPECT_EQ(soa.cpuRange(-1), (std::pair<std::size_t, std::size_t>{}));
    EXPECT_EQ(soa.cpuRange(trace.num_cpus),
              (std::pair<std::size_t, std::size_t>{}));
}

TEST(SimdDispatch, EnvParseIsStrict)
{
    {
        SimdEnvGuard guard(nullptr);
        EXPECT_EQ(simdModeFromEnv(), SimdMode::Auto);
    }
    {
        SimdEnvGuard guard("");
        EXPECT_EQ(simdModeFromEnv(), SimdMode::Auto);
    }
    {
        SimdEnvGuard guard("0");
        EXPECT_EQ(simdModeFromEnv(), SimdMode::Scalar);
    }
    {
        SimdEnvGuard guard("1");
        EXPECT_EQ(simdModeFromEnv(), SimdMode::Simd);
    }
    {
        SimdEnvGuard guard("2");
        EXPECT_EQ(simdModeFromEnv(), SimdMode::Avx512);
    }
}

TEST(SimdDispatchDeathTest, EnvParseRejectsJunk)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    for (const char* junk : {"3", "yes", "true", "01", " 1", " 2"}) {
        SimdEnvGuard guard(junk);
        EXPECT_DEATH(simdModeFromEnv(),
                     "SPIKESIM_SIMD must be \"0\", \"1\" or \"2\"")
            << junk;
    }
}

TEST(SimdDispatch, ResolveHonorsExplicitAndAutoModes)
{
    // Explicit Scalar ignores the environment entirely.
    {
        SimdEnvGuard guard("1");
        const KernelChoice c = resolveKernel(SimdMode::Scalar);
        EXPECT_EQ(c.kind, KernelKind::Scalar);
        EXPECT_NE(c.reason.find("forced by caller"), std::string::npos)
            << c.reason;
    }
    // Auto follows the env when set...
    {
        SimdEnvGuard guard("0");
        const KernelChoice c = resolveKernel(SimdMode::Auto);
        EXPECT_EQ(c.kind, KernelKind::Scalar);
        EXPECT_NE(c.reason.find("SPIKESIM_SIMD"), std::string::npos)
            << c.reason;
    }
    if (simdAvailable()) {
        SimdEnvGuard guard("1");
        EXPECT_EQ(resolveKernel(SimdMode::Auto).kind,
                  KernelKind::Avx2);
    }
    if (avx512Available()) {
        SimdEnvGuard guard("2");
        EXPECT_EQ(resolveKernel(SimdMode::Auto).kind,
                  KernelKind::Avx512);
    }
    // ...and the calibrated choice when not: whatever kernel wins, it
    // must be runnable here and must say why it was picked.
    {
        SimdEnvGuard guard(nullptr);
        const KernelChoice c = resolveKernel(SimdMode::Auto);
        if (c.kind == KernelKind::Avx2)
            EXPECT_TRUE(simdAvailable());
        if (c.kind == KernelKind::Avx512)
            EXPECT_TRUE(avx512Available());
        EXPECT_NE(c.reason.find("auto"), std::string::npos)
            << c.reason;
        // Calibration is cached: resolving again returns the same
        // choice without re-timing.
        const KernelChoice again = resolveKernel(SimdMode::Auto);
        EXPECT_EQ(again.kind, c.kind);
        EXPECT_EQ(again.reason, c.reason);
    }
    if (simdAvailable()) {
        SimdEnvGuard guard("0");
        // Explicit Simd wins over a scalar-forcing environment.
        EXPECT_EQ(resolveKernel(SimdMode::Simd).kind,
                  KernelKind::Avx2);
    }
    EXPECT_STREQ(kernelName(KernelKind::Scalar), "scalar");
    EXPECT_STREQ(kernelName(KernelKind::Avx2), "avx2");
    EXPECT_STREQ(kernelName(KernelKind::Avx512), "avx512");
    // Compiled-but-no-CPU can't be simulated here, but the implication
    // must hold: available implies compiled.
    if (simdAvailable()) {
        EXPECT_TRUE(simdKernelsCompiled());
    }
    if (avx512Available()) {
        EXPECT_TRUE(avx512KernelsCompiled());
    }
}

TEST(SimdDispatchDeathTest, ForcingSimdWithoutSupportDies)
{
    if (simdAvailable())
        GTEST_SKIP() << "host can run the AVX2 kernels";
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(resolveKernel(SimdMode::Simd),
                 "SIMD kernels requested but unavailable");
}

TEST(SimdDispatchDeathTest, ForcingAvx512WithoutSupportDies)
{
    if (avx512Available())
        GTEST_SKIP() << "host can run the AVX-512 kernels";
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(resolveKernel(SimdMode::Avx512),
                 "AVX-512 kernels requested but unavailable");
    // The environment route must die identically: strict parsing
    // accepts "2", then availability checking rejects it.
    SimdEnvGuard guard("2");
    EXPECT_DEATH(resolveKernel(SimdMode::Auto),
                 "AVX-512 kernels requested but unavailable");
}

/**
 * Mixed geometry fuzz: odd associativities (3-way, 6-way) ride the
 * generic probe inside the AVX2 build, 4-way and 8-way take the vector
 * set probes, direct-mapped configs of several line sizes take the
 * gather probe — all fused into one column so the line-size groups and
 * the nested-mask DM inclusion fast path are in play.
 */
TEST(SimdKernels, OddAssocAndMixedGeometryMatchOracle)
{
    const std::vector<mem::CacheConfig> configs = {
        {16 * 1024, 64, 1},  {64 * 1024, 64, 1},  {8 * 1024, 32, 2},
        {48 * 1024, 64, 3},  {64 * 1024, 128, 4}, {24 * 1024, 32, 6},
        {64 * 1024, 128, 8}, {32 * 1024, 256, 1}, {128 * 1024, 256, 4},
    };
    std::vector<SimdMode> modes{SimdMode::Scalar};
    if (simdAvailable())
        modes.push_back(SimdMode::Simd);
    if (avx512Available())
        modes.push_back(SimdMode::Avx512);
    support::ThreadPool pool(3);
    std::vector<support::ThreadPool*> pools{nullptr, &pool};
    for (int cpus : {1, 4}) {
        Workload w(cpus, 7100 + static_cast<std::uint32_t>(cpus));
        for (StreamFilter filter :
             {StreamFilter::AppOnly, StreamFilter::Combined}) {
            ResolvedTrace trace = w.rep.resolve(filter);
            const ResolvedTraceSoA soa = toSoA(trace);
            std::vector<ICacheReplayResult> oracle;
            for (const auto& c : configs)
                oracle.push_back(w.rep.icache(c, filter));
            for (SimdMode mode : modes) {
                for (support::ThreadPool* p : pools) {
                    auto col = replayICache(soa, configs, mode, p);
                    ASSERT_EQ(col.size(), oracle.size());
                    for (std::size_t i = 0; i < oracle.size(); ++i) {
                        EXPECT_EQ(col[i].accesses, oracle[i].accesses)
                            << "cfg " << i;
                        EXPECT_EQ(col[i].misses, oracle[i].misses)
                            << "cfg " << i;
                        EXPECT_EQ(col[i].app_misses,
                                  oracle[i].app_misses)
                            << "cfg " << i;
                        EXPECT_EQ(col[i].kernel_misses,
                                  oracle[i].kernel_misses)
                            << "cfg " << i;
                        for (int m = 0; m < 2; ++m)
                            for (int v = 0; v < 3; ++v)
                                EXPECT_EQ(
                                    col[i].interference.counts[m][v],
                                    oracle[i].interference.counts[m][v])
                                    << "cfg " << i;
                    }
                }
            }
        }
    }
}

} // namespace
} // namespace spikesim::sim
