/** @file Tests for the instruction TLB model. */

#include <gtest/gtest.h>

#include "mem/itlb.hh"

namespace spikesim::mem {
namespace {

constexpr std::uint64_t kPage = 8 * 1024;

TEST(ITlb, MissThenHitSamePage)
{
    ITlb tlb(4);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1ffc));
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(ITlb, CapacityEviction)
{
    ITlb tlb(2);
    tlb.access(0 * kPage);
    tlb.access(1 * kPage);
    tlb.access(2 * kPage); // evicts page 0 (LRU)
    EXPECT_FALSE(tlb.access(0 * kPage));
    EXPECT_EQ(tlb.misses(), 4u);
}

TEST(ITlb, LruOrderRespectsRecency)
{
    ITlb tlb(2);
    tlb.access(0 * kPage);
    tlb.access(1 * kPage);
    tlb.access(0 * kPage); // page 0 recent; page 1 is LRU
    tlb.access(2 * kPage); // evicts page 1
    EXPECT_TRUE(tlb.access(0 * kPage));
    EXPECT_FALSE(tlb.access(1 * kPage));
}

TEST(ITlb, SamePageFilterStillUpdatesRecency)
{
    ITlb tlb(2);
    tlb.access(0 * kPage);
    tlb.access(1 * kPage);
    // Long run inside page 1 through the same-page fast path.
    for (int i = 0; i < 100; ++i)
        tlb.access(1 * kPage + static_cast<std::uint64_t>(i) * 4);
    tlb.access(2 * kPage); // must evict page 0, not the hot page 1
    EXPECT_TRUE(tlb.access(1 * kPage));
    EXPECT_FALSE(tlb.access(0 * kPage));
}

TEST(ITlb, CustomPageSize)
{
    ITlb tlb(4, 4096);
    tlb.access(0);
    EXPECT_FALSE(tlb.access(4096)); // different 4KB page
    EXPECT_TRUE(tlb.access(4100));
}

TEST(ITlb, ResetClears)
{
    ITlb tlb(4);
    tlb.access(0);
    tlb.reset();
    EXPECT_EQ(tlb.hits() + tlb.misses(), 0u);
    EXPECT_FALSE(tlb.access(0));
}

} // namespace
} // namespace spikesim::mem
