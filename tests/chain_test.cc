/** @file Tests for basic block chaining (paper section 2, Figure 1a). */

#include <gtest/gtest.h>

#include "core/chain.hh"
#include "opt/exttsp.hh"
#include "program/builder.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"

namespace spikesim::core {
namespace {

using program::BlockLocalId;
using program::EdgeKind;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

/**
 * The shape of the paper's Figure 1a example: an entry, a loop whose
 * conditional prefers one side 60/40, and a tail. Weights are assigned
 * through an explicit profile.
 */
Program
figure1Program()
{
    Program p("fig1");
    ProcedureBuilder b("A");
    // A1 -> A2 (fallthrough)
    // A2: cond, taken A5 (0.4), fall A3 (0.6)
    // A3 -> A4 (fall), A4 -> A8 (uncond)
    // A5 -> A6 (fall), A6 -> A7 (fall), A7 -> A8 (fall)
    // A8: return
    auto a1 = b.addBlock(2, Terminator::FallThrough);
    auto a2 = b.addBlock(2, Terminator::CondBranch);
    auto a3 = b.addBlock(2, Terminator::FallThrough);
    auto a4 = b.addBlock(2, Terminator::UncondBranch);
    auto a5 = b.addBlock(2, Terminator::FallThrough);
    auto a6 = b.addBlock(2, Terminator::FallThrough);
    auto a7 = b.addBlock(2, Terminator::FallThrough);
    auto a8 = b.addBlock(2, Terminator::Return);
    b.addEdge(a1, a2, EdgeKind::FallThrough);
    b.addCond(a2, a5, a3, 0.4);
    b.addEdge(a3, a4, EdgeKind::FallThrough);
    b.addEdge(a4, a8, EdgeKind::UncondTarget);
    b.addEdge(a5, a6, EdgeKind::FallThrough);
    b.addEdge(a6, a7, EdgeKind::FallThrough);
    b.addEdge(a7, a8, EdgeKind::FallThrough);
    p.addProcedure(b.build());
    EXPECT_EQ(p.validate(), "");
    return p;
}

TEST(Chain, SequentializesTheHotPath)
{
    Program p = figure1Program();
    profile::Profile prof(p);
    // 10 executions: 6 via A3/A4, 4 via A5..A7 (Figure 1a weights).
    prof.addBlock(0, 10);
    prof.addBlock(1, 10);
    prof.addEdge(0, 1, 10);
    prof.addBlock(2, 6);
    prof.addBlock(3, 6);
    prof.addEdge(1, 2, 6);
    prof.addEdge(2, 3, 6);
    prof.addEdge(3, 7, 6);
    prof.addBlock(4, 4);
    prof.addBlock(5, 4);
    prof.addBlock(6, 4);
    prof.addEdge(1, 4, 4);
    prof.addEdge(4, 5, 4);
    prof.addEdge(5, 6, 4);
    prof.addEdge(6, 7, 4);
    prof.addBlock(7, 10);

    std::vector<BlockLocalId> order = chainBasicBlocks(p, 0, prof);
    ASSERT_EQ(order.size(), 8u);
    // The hot path A1,A2,A3,A4,A8 is chained in order.
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 1u);
    EXPECT_EQ(order[2], 2u);
    EXPECT_EQ(order[3], 3u);
    EXPECT_EQ(order[4], 7u);
    // The cold side A5,A6,A7 follows as its own chain.
    EXPECT_EQ(order[5], 4u);
    EXPECT_EQ(order[6], 5u);
    EXPECT_EQ(order[7], 6u);
    // Chaining strictly improved the fall-through weight...
    std::vector<BlockLocalId> natural{0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_GT(fallThroughWeight(p, 0, prof, order),
              fallThroughWeight(p, 0, prof, natural));
    // ...and the richer ExtTSP score (the search proxy) agrees.
    EXPECT_GT(opt::extTspOrderScore(p, 0, prof, order),
              opt::extTspOrderScore(p, 0, prof, natural));
}

TEST(Chain, IsAPermutation)
{
    Program p = figure1Program();
    profile::Profile prof(p); // all-zero profile
    std::vector<BlockLocalId> order = chainBasicBlocks(p, 0, prof);
    std::vector<bool> seen(8, false);
    for (BlockLocalId b : order) {
        ASSERT_LT(b, 8u);
        EXPECT_FALSE(seen[b]);
        seen[b] = true;
    }
}

TEST(Chain, EntryBlockComesFirst)
{
    Program p = figure1Program();
    profile::Profile prof(p);
    // Give a non-entry chain far more weight; entry chain still leads.
    prof.addEdge(4, 5, 1000);
    prof.addEdge(5, 6, 1000);
    std::vector<BlockLocalId> order = chainBasicBlocks(p, 0, prof);
    EXPECT_EQ(order[0], 0u);
}

TEST(Chain, DoesNotCreateCycles)
{
    // A <-> B mutual edges: chaining must not try to link both ways.
    Program p("cycle");
    ProcedureBuilder b("p");
    auto a = b.addBlock(1, Terminator::CondBranch);
    auto c = b.addBlock(1, Terminator::CondBranch);
    auto r = b.addBlock(1, Terminator::Return);
    auto r2 = b.addBlock(1, Terminator::Return);
    b.addCond(a, c, r2, 0.9);  // a -> c hot
    b.addCond(c, a, r, 0.9);   // c -> a hot (back edge)
    p.addProcedure(b.build());
    ASSERT_EQ(p.validate(), "");
    profile::Profile prof(p);
    prof.addEdge(0, 1, 100);
    prof.addEdge(1, 0, 99);
    std::vector<BlockLocalId> order = chainBasicBlocks(p, 0, prof);
    EXPECT_EQ(order.size(), 4u); // completes without hanging/losing
}

TEST(Chain, BiasesConditionalsTowardNotTaken)
{
    // The chained order should make the 60% side the fall-through,
    // even though the original binary falls through to the 40% side.
    Program p("bias");
    ProcedureBuilder b("p");
    auto c = b.addBlock(1, Terminator::CondBranch);
    auto cold = b.addBlock(1, Terminator::UncondBranch); // original fall
    auto hot = b.addBlock(1, Terminator::FallThrough);   // original taken
    auto r = b.addBlock(1, Terminator::Return);
    b.addCond(c, hot, cold, 0.6);
    b.addEdge(cold, r, EdgeKind::UncondTarget);
    b.addEdge(hot, r, EdgeKind::FallThrough);
    p.addProcedure(b.build());
    ASSERT_EQ(p.validate(), "");
    profile::Profile prof(p);
    prof.addEdge(0, 2, 60);
    prof.addEdge(0, 1, 40);
    prof.addEdge(2, 3, 60);
    prof.addEdge(1, 3, 40);
    std::vector<BlockLocalId> order = chainBasicBlocks(p, 0, prof);
    // hot (block 2) directly follows the conditional.
    ASSERT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 2u);
}

/** Property sweep: chained order never reduces fall-through weight. */
class ChainProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ChainProperty, NeverWorseThanNaturalOrder)
{
    synth::SyntheticProgram sp = synth::buildSyntheticProgram(
        synth::SynthParams::kernelLike(GetParam()));
    profile::Profile prof(sp.prog);
    profile::ProfileRecorder rec(trace::ImageId::Kernel, prof);
    synth::CfgWalker w(sp.prog, trace::ImageId::Kernel, GetParam());
    trace::ExecContext ctx;
    for (int i = 0; i < 30; ++i) {
        w.run(sp.entry("sys_read"), ctx, rec);
        w.run(sp.entry("sched_switch"), ctx, rec);
    }
    double chained_exttsp = 0.0, natural_exttsp = 0.0;
    for (program::ProcId pid = 0; pid < sp.prog.numProcs(); pid += 7) {
        std::vector<BlockLocalId> order =
            chainBasicBlocks(sp.prog, pid, prof);
        ASSERT_EQ(order.size(), sp.prog.proc(pid).blocks.size());
        std::vector<BlockLocalId> natural(order.size());
        for (std::size_t i = 0; i < natural.size(); ++i)
            natural[i] = static_cast<BlockLocalId>(i);
        EXPECT_GE(fallThroughWeight(sp.prog, pid, prof, order),
                  fallThroughWeight(sp.prog, pid, prof, natural))
            << "proc " << sp.prog.proc(pid).name;
        // ExtTSP is asserted in aggregate below rather than per proc:
        // its extra terms (distance decay, line co-residency, and
        // crediting indirect-jump targets that happen to land
        // adjacent) are not what chaining maximizes, so an individual
        // proc can legitimately score lower chained than natural.
        chained_exttsp += opt::extTspOrderScore(sp.prog, pid, prof, order);
        natural_exttsp +=
            opt::extTspOrderScore(sp.prog, pid, prof, natural);
        // Permutation check.
        std::vector<bool> seen(order.size(), false);
        for (BlockLocalId b : order) {
            ASSERT_FALSE(seen[b]);
            seen[b] = true;
        }
    }
    // Full-default ExtTSP (with the distance-decay terms): chaining
    // must still win summed over the sampled procedures.
    EXPECT_GE(chained_exttsp, natural_exttsp);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainProperty,
                         ::testing::Values(11, 22, 33, 44));

} // namespace
} // namespace spikesim::core
