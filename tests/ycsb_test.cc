/** @file Tests for the YCSB-style key-value workload driver. */

#include <gtest/gtest.h>

#include "db/ycsb.hh"

namespace spikesim::db {
namespace {

YcsbConfig
smallConfig(std::uint64_t seed = 7)
{
    YcsbConfig c;
    c.record_count = 500;
    c.buffer_frames = 64;
    c.operation_count = 6;
    c.seed = seed;
    return c;
}

TEST(Ycsb, SetupPopulatesUsertable)
{
    YcsbDatabase db(smallConfig());
    db.setup();
    EXPECT_EQ(db.verify(), "");
}

TEST(Ycsb, RequestsReadAndUpdateConsistently)
{
    YcsbDatabase db(smallConfig());
    db.setup();
    std::uint64_t reads = 0;
    std::uint64_t updates = 0;
    for (int i = 0; i < 300; ++i) {
        YcsbOutcome out =
            db.runRequest(static_cast<std::uint16_t>(i % 4));
        EXPECT_EQ(out.reads + out.updates,
                  db.config().operation_count);
        reads += static_cast<std::uint64_t>(out.reads);
        updates += static_cast<std::uint64_t>(out.updates);
    }
    EXPECT_EQ(db.reads(), reads);
    EXPECT_EQ(db.updates(), updates);
    // update_ratio 0.5: both kinds actually happen.
    EXPECT_GT(reads, 0u);
    EXPECT_GT(updates, 0u);
    // verify() audits the summed version counters against updates().
    EXPECT_EQ(db.verify(), "");
}

TEST(Ycsb, SameSeedSameOutcomes)
{
    YcsbDatabase a(smallConfig(11));
    YcsbDatabase b(smallConfig(11));
    a.setup();
    b.setup();
    for (int i = 0; i < 100; ++i) {
        YcsbOutcome oa = a.runRequest(0);
        YcsbOutcome ob = b.runRequest(0);
        EXPECT_EQ(oa.reads, ob.reads);
        EXPECT_EQ(oa.updates, ob.updates);
        EXPECT_EQ(oa.value_sum, ob.value_sum);
    }
    YcsbDatabase c(smallConfig(12));
    c.setup();
    bool differs = false;
    YcsbDatabase d(smallConfig(11));
    d.setup();
    for (int i = 0; i < 100 && !differs; ++i) {
        YcsbOutcome oc = c.runRequest(0);
        YcsbOutcome od = d.runRequest(0);
        differs = oc.value_sum != od.value_sum ||
                  oc.updates != od.updates;
    }
    EXPECT_TRUE(differs);
}

TEST(Ycsb, MixKnobsBindTheExtremes)
{
    YcsbConfig ro = smallConfig();
    ro.update_ratio = 0.0;
    YcsbDatabase reads_only(ro);
    reads_only.setup();
    for (int i = 0; i < 100; ++i)
        reads_only.runRequest(0);
    EXPECT_EQ(reads_only.updates(), 0u);
    EXPECT_GT(reads_only.reads(), 0u);
    EXPECT_EQ(reads_only.verify(), "");

    YcsbConfig wo = smallConfig();
    wo.update_ratio = 1.0;
    YcsbDatabase updates_only(wo);
    updates_only.setup();
    for (int i = 0; i < 100; ++i)
        updates_only.runRequest(0);
    EXPECT_EQ(updates_only.reads(), 0u);
    EXPECT_EQ(updates_only.updates(),
              100u * static_cast<std::uint64_t>(wo.operation_count));
    EXPECT_EQ(updates_only.verify(), "");
}

TEST(Ycsb, ZipfSkewConcentratesKeys)
{
    // theta 0 (uniform) vs high skew: compare how many distinct values
    // the reads return — a crude but deterministic skew signal.
    YcsbConfig uniform = smallConfig();
    uniform.zipf_theta = 0.0;
    uniform.update_ratio = 0.0;
    YcsbConfig skewed = smallConfig();
    skewed.zipf_theta = 0.99;
    skewed.update_ratio = 0.0;
    std::int64_t uniform_sum = 0;
    std::int64_t skewed_sum = 0;
    YcsbDatabase u(uniform);
    YcsbDatabase s(skewed);
    u.setup();
    s.setup();
    for (int i = 0; i < 200; ++i) {
        uniform_sum += u.runRequest(0).value_sum;
        skewed_sum += s.runRequest(0).value_sum;
    }
    // Zipf favors low-numbered keys, whose loaded value equals the key
    // id — so the skewed sum of read values is much smaller.
    EXPECT_LT(skewed_sum, uniform_sum / 2);
}

TEST(Ycsb, ConfigCheckCatchesNonsense)
{
    YcsbConfig c = smallConfig();
    EXPECT_EQ(c.check(), "");
    c.record_count = 0;
    EXPECT_NE(c.check(), "");
    c = smallConfig();
    c.zipf_theta = 1.0; // the Gray et al. generator needs theta < 1
    EXPECT_NE(c.check(), "");
    c = smallConfig();
    c.update_ratio = 1.5;
    EXPECT_NE(c.check(), "");
    c = smallConfig();
    c.operation_count = 0;
    EXPECT_NE(c.check(), "");
}

} // namespace
} // namespace spikesim::db
