/**
 * @file
 * Crash-point fuzzing: run the OLTP workload, crash at many different
 * points (with and without checkpoints), recover, and verify full
 * consistency every time. This is the test that gives the WAL +
 * recovery implementation its teeth.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "db/tpcb.hh"
#include "support/rng.hh"

namespace spikesim::db {
namespace {

TpcbConfig
config(std::uint64_t seed)
{
    TpcbConfig c;
    c.branches = 3;
    c.tellers_per_branch = 5;
    c.accounts_per_branch = 120;
    c.buffer_frames = 32; // tiny pool: constant eviction traffic
    c.seed = seed;
    c.wal.group_commit_batch = 3;
    return c;
}

/** Crash after every `stride` transactions and re-verify. */
class CrashPoints
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(CrashPoints, RepeatedCrashRecoverCyclesStayConsistent)
{
    auto [stride, seed] = GetParam();
    TpcbDatabase db(config(seed));
    db.setup();
    support::Pcg32 rng(seed);
    int txns_done = 0;
    for (int cycle = 0; cycle < 6; ++cycle) {
        for (int i = 0; i < stride; ++i) {
            db.runTransaction(static_cast<std::uint16_t>(i % 3));
            ++txns_done;
        }
        // Sometimes checkpoint, sometimes flush only, sometimes
        // nothing: exercises every durability combination.
        switch (rng.nextBounded(3)) {
          case 0:
            db.checkpoint();
            break;
          case 1:
            db.wal().flush();
            break;
          default:
            break;
        }
        db.crash();
        db.recover();
        ASSERT_EQ(db.verify(), "")
            << "cycle " << cycle << " after " << txns_done << " txns";
        ASSERT_EQ(db.accountIndex().check(), "") << "cycle " << cycle;
    }
    // The database still works after six crash/recover cycles.
    for (int i = 0; i < 20; ++i)
        db.runTransaction(0);
    EXPECT_EQ(db.verify(), "");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashPoints,
    ::testing::Combine(::testing::Values(1, 3, 7, 17),
                       ::testing::Values(101u, 202u, 303u)));

TEST(CrashPoints, HistoryNeverExceedsCommittedTransactions)
{
    TpcbDatabase db(config(7));
    db.setup();
    for (int i = 0; i < 25; ++i)
        db.runTransaction(0);
    db.crash();
    db.recover();
    // Whatever survived, every surviving history row belongs to a
    // committed transaction (balances conserve exactly).
    EXPECT_EQ(db.verify(), "");
    EXPECT_LE(db.history().numRows(), 25u);
}

TEST(CrashPoints, RecoveryIsIdempotentAcrossDoubleCrash)
{
    TpcbDatabase db(config(11));
    db.setup();
    for (int i = 0; i < 40; ++i)
        db.runTransaction(0);
    db.wal().flush();
    db.crash();
    db.recover();
    std::uint64_t rows = db.history().numRows();
    db.crash(); // crash again immediately, before any checkpoint
    db.recover();
    EXPECT_EQ(db.history().numRows(), rows);
    EXPECT_EQ(db.verify(), "");
}

} // namespace
} // namespace spikesim::db
