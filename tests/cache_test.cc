/** @file Tests for the set-associative cache simulator. */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/instrumented.hh"
#include "mem/streambuf.hh"
#include "mem/threec.hh"
#include "support/rng.hh"

namespace spikesim::mem {
namespace {

TEST(CacheConfig, Geometry)
{
    CacheConfig c{64 * 1024, 64, 2};
    EXPECT_EQ(c.check(), "");
    EXPECT_EQ(c.numSets(), 512u);
    EXPECT_EQ(c.numLines(), 1024u);
    EXPECT_EQ(c.label(), "64KB/64B/2-way");
    EXPECT_EQ((CacheConfig{8 * 1024, 32, 1}).label(), "8KB/32B/DM");
}

TEST(CacheConfig, RejectsBadGeometry)
{
    EXPECT_NE((CacheConfig{64 * 1024, 48, 1}).check(), ""); // line !pow2
    EXPECT_NE((CacheConfig{64 * 1024, 64, 0}).check(), ""); // assoc 0
    EXPECT_NE((CacheConfig{100, 64, 1}).check(), "");       // not multiple
    EXPECT_NE((CacheConfig{3 * 64 * 64, 64, 64}).check(), ""); // sets !pow2
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache c({1024, 64, 1});
    AccessResult r = c.access(0x100, Owner::App);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.victim, Owner::None);
    r = c.access(0x104, Owner::App); // same line
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, DirectMappedConflict)
{
    SetAssocCache c({1024, 64, 1}); // 16 sets
    c.access(0, Owner::App);
    c.access(1024, Owner::Kernel); // same set, evicts
    AccessResult r = c.access(0, Owner::App);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.victim, Owner::Kernel);
    EXPECT_EQ(c.missesBy(Owner::App), 2u);
    EXPECT_EQ(c.missesBy(Owner::Kernel), 1u);
}

TEST(Cache, TwoWayHoldsBothConflictingLines)
{
    SetAssocCache c({2048, 64, 2}); // 16 sets, 2 ways
    c.access(0, Owner::App);
    c.access(2048, Owner::App); // same set, other way
    EXPECT_TRUE(c.access(0, Owner::App).hit);
    EXPECT_TRUE(c.access(2048, Owner::App).hit);
}

TEST(Cache, LruEvictsLeastRecent)
{
    SetAssocCache c({2048, 64, 2});
    c.access(0, Owner::App);      // way A
    c.access(2048, Owner::App);   // way B
    c.access(0, Owner::App);      // touch A -> B is LRU
    c.access(4096, Owner::App);   // evicts B
    EXPECT_TRUE(c.access(0, Owner::App).hit);
    EXPECT_FALSE(c.access(2048, Owner::App).hit);
}

TEST(Cache, ResetClearsEverything)
{
    SetAssocCache c({1024, 64, 1});
    c.access(0, Owner::App);
    c.reset();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_FALSE(c.access(0, Owner::App).hit);
}

/**
 * Reference model: per-set LRU stacks implemented naively with deques.
 * The production cache must match it exactly on random streams.
 */
class ReferenceCache
{
  public:
    explicit ReferenceCache(const CacheConfig& c) : config_(c)
    {
        sets_.resize(c.numSets());
    }

    bool
    access(std::uint64_t addr)
    {
        std::uint64_t line = addr / config_.line_bytes;
        auto& stack = sets_[line % config_.numSets()];
        for (auto it = stack.begin(); it != stack.end(); ++it) {
            if (*it == line) {
                stack.erase(it);
                stack.push_front(line);
                return true;
            }
        }
        stack.push_front(line);
        if (stack.size() > config_.assoc)
            stack.pop_back();
        return false;
    }

  private:
    CacheConfig config_;
    std::vector<std::deque<std::uint64_t>> sets_;
};

class CacheVsReference
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>>
{
};

TEST_P(CacheVsReference, MatchesNaiveLruExactly)
{
    auto [assoc, seed] = GetParam();
    CacheConfig config{8 * 1024, 64, assoc};
    SetAssocCache cache(config);
    ReferenceCache ref(config);
    support::Pcg32 rng(static_cast<std::uint64_t>(seed));
    for (int i = 0; i < 50000; ++i) {
        // Working set ~4x the cache to exercise replacement.
        std::uint64_t addr = rng.nextBounded(32 * 1024);
        EXPECT_EQ(cache.access(addr, Owner::App).hit, ref.access(addr))
            << "at access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheVsReference,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1, 2)));

TEST(Cache, FullyAssociativeNeverConflictMisses)
{
    CacheConfig config{4096, 64, 64}; // one set
    EXPECT_EQ(config.check(), "");
    SetAssocCache c(config);
    // Touch exactly 64 distinct lines repeatedly: after the cold pass
    // everything hits regardless of address bits.
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t i = 0; i < 64; ++i)
            c.access(i * 8192, Owner::App);
    EXPECT_EQ(c.misses(), 64u);
    EXPECT_EQ(c.hits(), 2u * 64u);
}

using CacheDeathTest = ::testing::Test;

TEST(CacheDeathTest, SimulatorsRejectBadConfigsAtConstruction)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // Every simulator must validate its geometry up front instead of
    // mis-indexing sets later.
    CacheConfig bad_line{64 * 1024, 48, 1};
    CacheConfig bad_mult{1000, 64, 1};
    EXPECT_DEATH(SetAssocCache{bad_line}, "bad cache config");
    EXPECT_DEATH(SetAssocCache{bad_mult}, "bad cache config");
    EXPECT_DEATH(InstrumentedICache{bad_line}, "bad cache config");
    EXPECT_DEATH(ClassifyingICache{bad_line}, "bad cache config");
    EXPECT_DEATH(StreamBufferICache(bad_line, 4), "bad cache config");
    HierarchyConfig h;
    h.l2 = bad_mult;
    EXPECT_DEATH(MemoryHierarchy{h}, "bad (L2|cache) config");
}

} // namespace
} // namespace spikesim::mem
