#include <gtest/gtest.h>
#include "db/tpcb.hh"
namespace spikesim::db {
TEST(WalProtocol, EvictedDirtyPagesAreCoveredByDurableLog)
{
    TpcbConfig c;
    c.branches = 2; c.tellers_per_branch = 3; c.accounts_per_branch = 400;
    c.buffer_frames = 8;              // brutal eviction pressure
    c.wal.group_commit_batch = 1000;  // commits never flush
    c.wal.flush_threshold_bytes = 1 << 30;
    TpcbDatabase db(c);
    db.setup();
    for (int i = 0; i < 60; ++i)
        db.runTransaction(0);
    // No flush since setup: every eviction wrote data whose log
    // records are volatile -- unless the pool enforces the WAL rule.
    db.crash();
    db.recover();
    EXPECT_EQ(db.verify(), "");
}
} // namespace
