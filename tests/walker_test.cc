/** @file Unit tests for the CFG walker. */

#include <gtest/gtest.h>

#include "program/builder.hh"
#include "synth/walker.hh"
#include "trace/trace.hh"

namespace spikesim::synth {
namespace {

using program::EdgeKind;
using program::Procedure;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

/** Straight-line procedure. */
Procedure
straight(const std::string& name, int blocks)
{
    ProcedureBuilder b(name);
    for (int i = 0; i < blocks - 1; ++i) {
        auto id = b.addBlock(2, Terminator::FallThrough);
        b.addEdge(id, id + 1, EdgeKind::FallThrough);
    }
    b.addBlock(2, Terminator::Return);
    return b.build();
}

TEST(Walker, StraightLineVisitsEveryBlockOnce)
{
    Program p("t");
    p.addProcedure(straight("s", 5));
    ASSERT_EQ(p.validate(), "");
    CfgWalker w(p, trace::ImageId::App, 1);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    WalkStats stats = w.run(0, ctx, buf);
    EXPECT_EQ(stats.blocks, 5u);
    EXPECT_EQ(stats.instrs, 10u);
    ASSERT_EQ(buf.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(buf.events()[i].block, i);
}

TEST(Walker, DeterministicForSameSeed)
{
    Program p("t");
    {
        ProcedureBuilder b("coin");
        auto c = b.addBlock(1, Terminator::CondBranch);
        auto t = b.addBlock(1, Terminator::Return);
        auto f = b.addBlock(1, Terminator::Return);
        b.addCond(c, t, f, 0.5);
        p.addProcedure(b.build());
    }
    trace::TraceBuffer b1, b2;
    trace::ExecContext ctx;
    CfgWalker w1(p, trace::ImageId::App, 99);
    CfgWalker w2(p, trace::ImageId::App, 99);
    for (int i = 0; i < 200; ++i) {
        w1.run(0, ctx, b1);
        w2.run(0, ctx, b2);
    }
    ASSERT_EQ(b1.size(), b2.size());
    for (std::size_t i = 0; i < b1.size(); ++i)
        EXPECT_EQ(b1.events()[i].block, b2.events()[i].block);
}

TEST(Walker, CondBranchFollowsProbability)
{
    Program p("t");
    {
        ProcedureBuilder b("coin");
        auto c = b.addBlock(1, Terminator::CondBranch);
        auto t = b.addBlock(1, Terminator::Return); // taken
        auto f = b.addBlock(1, Terminator::Return);
        b.addCond(c, t, f, 0.7);
        p.addProcedure(b.build());
    }
    CfgWalker w(p, trace::ImageId::App, 5);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        w.run(0, ctx, buf);
    int taken = 0;
    for (const auto& e : buf.events())
        taken += e.block == 1 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(taken) / n, 0.7, 0.02);
}

TEST(Walker, IndirectJumpFollowsDistribution)
{
    Program p("t");
    {
        ProcedureBuilder b("sw");
        auto s = b.addBlock(1, Terminator::IndirectJump);
        auto a = b.addBlock(1, Terminator::Return);
        auto c = b.addBlock(1, Terminator::Return);
        auto d = b.addBlock(1, Terminator::Return);
        b.addEdge(s, a, EdgeKind::IndirectTarget, 0.6);
        b.addEdge(s, c, EdgeKind::IndirectTarget, 0.3);
        b.addEdge(s, d, EdgeKind::IndirectTarget, 0.1);
        p.addProcedure(b.build());
    }
    CfgWalker w(p, trace::ImageId::App, 6);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        w.run(0, ctx, buf);
    int counts[4] = {0, 0, 0, 0};
    for (const auto& e : buf.events())
        counts[e.block]++;
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.6, 0.02);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.02);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.1, 0.02);
}

TEST(Walker, HintedLoopTakesExactTripCount)
{
    // do { body } while (latch taken): latch hinted at slot 1.
    Program p("t");
    {
        ProcedureBuilder b("loop");
        auto body = b.addBlock(2, Terminator::FallThrough);
        auto latch = b.addBlock(1, Terminator::CondBranch);
        auto exit = b.addBlock(1, Terminator::Return);
        b.addEdge(body, latch, EdgeKind::FallThrough);
        b.addCond(latch, body, exit, 0.5);
        b.setHintSlot(latch, 1);
        p.addProcedure(b.build());
    }
    CfgWalker w(p, trace::ImageId::App, 7);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    int hint = 4; // take the back edge exactly 4 times
    w.run(0, ctx, buf, {&hint, 1});
    int body_visits = 0;
    for (const auto& e : buf.events())
        body_visits += e.block == 0 ? 1 : 0;
    EXPECT_EQ(body_visits, 5); // 1 entry + 4 repeats
}

TEST(Walker, HintedLoopReinitializesPerActivation)
{
    Program p("t");
    {
        ProcedureBuilder b("loop");
        auto body = b.addBlock(2, Terminator::FallThrough);
        auto latch = b.addBlock(1, Terminator::CondBranch);
        auto exit = b.addBlock(1, Terminator::Return);
        b.addEdge(body, latch, EdgeKind::FallThrough);
        b.addCond(latch, body, exit, 0.5);
        b.setHintSlot(latch, 1);
        p.addProcedure(b.build());
    }
    CfgWalker w(p, trace::ImageId::App, 8);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    int hint = 2;
    for (int i = 0; i < 3; ++i)
        w.run(0, ctx, buf, {&hint, 1});
    int body_visits = 0;
    for (const auto& e : buf.events())
        body_visits += e.block == 0 ? 1 : 0;
    EXPECT_EQ(body_visits, 3 * 3);
}

TEST(Walker, CallsDescendAndReportEdges)
{
    Program p("t");
    program::ProcId callee_id = 1;
    {
        ProcedureBuilder b("caller");
        auto c = b.addBlock(1, Terminator::Call, callee_id);
        auto r = b.addBlock(1, Terminator::Return);
        b.addEdge(c, r, EdgeKind::FallThrough);
        p.addProcedure(b.build());
    }
    p.addProcedure(straight("callee", 2));
    ASSERT_EQ(p.validate(), "");

    struct CallCounter : trace::TraceSink
    {
        int calls = 0;
        int edges = 0;
        int blocks = 0;
        void
        onBlock(const trace::ExecContext&, trace::ImageId,
                program::GlobalBlockId) override
        {
            ++blocks;
        }
        void
        onEdge(trace::ImageId, program::GlobalBlockId,
               program::GlobalBlockId) override
        {
            ++edges;
        }
        void
        onCall(trace::ImageId, program::GlobalBlockId caller,
               program::ProcId callee) override
        {
            ++calls;
            EXPECT_EQ(caller, 0u);
            EXPECT_EQ(callee, 1u);
        }
    } sink;

    CfgWalker w(p, trace::ImageId::App, 9);
    trace::ExecContext ctx;
    WalkStats stats = w.run(0, ctx, sink);
    EXPECT_EQ(sink.calls, 1);
    EXPECT_EQ(sink.blocks, 4); // caller 2 + callee 2
    EXPECT_EQ(stats.calls, 1u);
    // Edges: caller call->ret, callee b0->b1.
    EXPECT_EQ(sink.edges, 2);
}

TEST(Walker, ContextPropagatesToEvents)
{
    Program p("t");
    p.addProcedure(straight("s", 2));
    CfgWalker w(p, trace::ImageId::Kernel, 10);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    ctx.cpu = 3;
    ctx.process = 17;
    w.run(0, ctx, buf);
    ASSERT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.events()[0].cpu, 3);
    EXPECT_EQ(buf.events()[0].process, 17);
    EXPECT_EQ(buf.events()[0].image, trace::ImageId::Kernel);
    EXPECT_EQ(buf.imageEvents(trace::ImageId::Kernel), 2u);
}

TEST(Walker, TotalInstrsAccumulates)
{
    Program p("t");
    p.addProcedure(straight("s", 3));
    CfgWalker w(p, trace::ImageId::App, 11);
    trace::NullSink sink;
    trace::ExecContext ctx;
    w.run(0, ctx, sink);
    w.run(0, ctx, sink);
    EXPECT_EQ(w.totalInstrs(), 12u);
}

} // namespace
} // namespace spikesim::synth
