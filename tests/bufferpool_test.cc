/** @file Tests for the buffer pool. */

#include <gtest/gtest.h>

#include "db/bufferpool.hh"

namespace spikesim::db {
namespace {

TEST(BufferPool, MissThenHit)
{
    SimDisk disk;
    BufferPool pool(disk, 4);
    FrameRef r = pool.fetch(10);
    EXPECT_EQ(pool.misses(), 1u);
    pool.release(r, false);
    FrameRef r2 = pool.fetch(10);
    EXPECT_EQ(pool.hits(), 1u);
    pool.release(r2, false);
}

TEST(BufferPool, DirtyPageWritesBackOnEviction)
{
    SimDisk disk;
    BufferPool pool(disk, 2);
    FrameRef r = pool.fetch(1);
    r.page->format(1, PageType::Heap, 8);
    std::int64_t v = 99;
    r.page->appendSlot(&v);
    pool.release(r, true);
    // Evict page 1 by filling the pool.
    pool.release(pool.fetch(2), false);
    pool.release(pool.fetch(3), false);
    EXPECT_TRUE(disk.pageExists(1));
    Page out;
    disk.readPage(1, out);
    std::int64_t read = 0;
    out.readSlot(0, read);
    EXPECT_EQ(read, 99);
}

TEST(BufferPool, CleanEvictionDoesNotWrite)
{
    SimDisk disk;
    BufferPool pool(disk, 2);
    pool.release(pool.fetch(1), false);
    pool.release(pool.fetch(2), false);
    pool.release(pool.fetch(3), false);
    EXPECT_FALSE(disk.pageExists(1));
}

TEST(BufferPool, PinnedFramesAreNotEvicted)
{
    SimDisk disk;
    BufferPool pool(disk, 2);
    FrameRef pinned = pool.fetch(1);
    pool.release(pool.fetch(2), false);
    pool.release(pool.fetch(3), false); // must evict 2, not pinned 1
    EXPECT_EQ(pinned.page->header().id, 1u);
    FrameRef again = pool.fetch(1);
    EXPECT_EQ(pool.hits(), 1u);
    pool.release(again, false);
    pool.release(pinned, false);
}

TEST(BufferPool, LruEvictsOldest)
{
    SimDisk disk;
    BufferPool pool(disk, 2);
    pool.release(pool.fetch(1), false);
    pool.release(pool.fetch(2), false);
    pool.release(pool.fetch(1), false); // 1 recent, 2 LRU
    pool.release(pool.fetch(3), false); // evicts 2
    pool.release(pool.fetch(1), false);
    EXPECT_EQ(pool.hits(), 2u);
    pool.release(pool.fetch(2), false);
    EXPECT_EQ(pool.misses(), 4u); // 1, 2, 3, 2-again
}

TEST(BufferPool, FlushAllWritesDirtyFrames)
{
    SimDisk disk;
    BufferPool pool(disk, 4);
    FrameRef r = pool.fetch(5);
    r.page->format(5, PageType::Heap, 8);
    pool.release(r, true);
    EXPECT_FALSE(disk.pageExists(5));
    pool.flushAll();
    EXPECT_TRUE(disk.pageExists(5));
}

TEST(BufferPool, DropAllForgetsEverything)
{
    SimDisk disk;
    BufferPool pool(disk, 4);
    FrameRef r = pool.fetch(5);
    r.page->format(5, PageType::Heap, 8);
    pool.release(r, true);
    pool.dropAll();
    EXPECT_FALSE(disk.pageExists(5)); // dirty data lost (crash)
    FrameRef r2 = pool.fetch(5);
    EXPECT_EQ(r2.page->header().type, PageType::Free);
    pool.release(r2, false);
}

TEST(BufferPool, ReportsHooks)
{
    struct Counter : EngineHooks
    {
        int hits = 0, misses = 0, reads = 0;
        void
        onOp(const char* entry, std::span<const int>) override
        {
            if (std::string(entry) == "buf_get_hit")
                ++hits;
            if (std::string(entry) == "buf_get_miss")
                ++misses;
        }
        void
        onSyscall(const char* entry, std::span<const int>) override
        {
            if (std::string(entry) == "sys_read")
                ++reads;
        }
    } hooks;
    SimDisk disk;
    BufferPool pool(disk, 2, &hooks);
    pool.release(pool.fetch(1), false);
    pool.release(pool.fetch(1), false);
    EXPECT_EQ(hooks.misses, 1);
    EXPECT_EQ(hooks.hits, 1);
    EXPECT_EQ(hooks.reads, 1);
}

TEST(BufferPool, PinnedCountTracksPins)
{
    SimDisk disk;
    BufferPool pool(disk, 4);
    EXPECT_EQ(pool.pinnedFrames(), 0u);
    FrameRef a = pool.fetch(1);
    FrameRef b = pool.fetch(2);
    EXPECT_EQ(pool.pinnedFrames(), 2u);
    pool.release(a, false);
    EXPECT_EQ(pool.pinnedFrames(), 1u);
    pool.release(b, false);
}

} // namespace
} // namespace spikesim::db
