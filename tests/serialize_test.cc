/** @file Tests for program text serialization. */

#include <gtest/gtest.h>

#include <sstream>

#include "program/builder.hh"
#include "program/serialize.hh"
#include "synth/synthprog.hh"

namespace spikesim::program {
namespace {

TEST(Serialize, RoundTripsHandBuiltProgram)
{
    Program p("hand");
    {
        ProcedureBuilder b("f");
        auto c = b.addBlock(3, Terminator::CondBranch);
        auto t = b.addBlock(2, Terminator::Call, 1);
        auto r = b.addBlock(1, Terminator::Return);
        b.addCond(c, r, t, 0.25);
        b.addEdge(t, r, EdgeKind::FallThrough);
        b.setHintSlot(c, 2);
        p.addProcedure(b.build());
    }
    {
        ProcedureBuilder b("g");
        auto s = b.addBlock(1, Terminator::IndirectJump);
        auto a = b.addBlock(4, Terminator::Return);
        auto c = b.addBlock(5, Terminator::Return);
        b.addEdge(s, a, EdgeKind::IndirectTarget, 0.75);
        b.addEdge(s, c, EdgeKind::IndirectTarget, 0.25);
        p.addProcedure(b.build());
    }
    ASSERT_EQ(p.validate(), "");

    std::stringstream ss;
    saveProgram(p, ss);
    Program q = loadProgram(ss);
    ASSERT_EQ(q.validate(), "");
    ASSERT_EQ(q.numProcs(), p.numProcs());
    ASSERT_EQ(q.numBlocks(), p.numBlocks());
    EXPECT_EQ(q.name(), "hand");
    EXPECT_EQ(q.proc(0).name, "f");
    EXPECT_EQ(q.proc(0).blocks[0].hintSlot, 2);
    EXPECT_EQ(q.proc(0).blocks[1].callee, 1u);
    EXPECT_EQ(q.proc(1).edges.size(), 2u);
    EXPECT_DOUBLE_EQ(q.proc(1).edges[0].prob, 0.75);
}

TEST(Serialize, RoundTripsTheKernelImageExactly)
{
    synth::SyntheticProgram sp =
        synth::buildSyntheticProgram(synth::SynthParams::kernelLike(13));
    std::stringstream ss;
    saveProgram(sp.prog, ss);
    Program q = loadProgram(ss);
    ASSERT_EQ(q.validate(), "");
    ASSERT_EQ(q.numProcs(), sp.prog.numProcs());
    ASSERT_EQ(q.numBlocks(), sp.prog.numBlocks());
    EXPECT_EQ(q.sizeInstrs(), sp.prog.sizeInstrs());
    // Spot-check structural identity.
    for (GlobalBlockId g = 0; g < q.numBlocks(); g += 37) {
        EXPECT_EQ(q.block(g).sizeInstrs, sp.prog.block(g).sizeInstrs);
        EXPECT_EQ(q.block(g).term, sp.prog.block(g).term);
        EXPECT_EQ(q.block(g).callee, sp.prog.block(g).callee);
    }
    for (ProcId pid = 0; pid < q.numProcs(); pid += 17)
        EXPECT_EQ(q.proc(pid).edges.size(),
                  sp.prog.proc(pid).edges.size());
}

TEST(Serialize, SecondRoundTripIsIdentityText)
{
    synth::SyntheticProgram sp =
        synth::buildSyntheticProgram(synth::SynthParams::kernelLike(14));
    std::stringstream a;
    saveProgram(sp.prog, a);
    std::string first = a.str();
    std::stringstream b;
    saveProgram(loadProgram(a), b);
    EXPECT_EQ(first, b.str());
}

} // namespace
} // namespace spikesim::program
