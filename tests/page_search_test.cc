/** @file Tests for the page-aware layout search pieces: hot/cold
 *  partition invariants, region-map preservation under the
 *  region-aware perturbation operators, and a small-program
 *  differential of the ExtTSP iTLB cost term against real iTLB replay
 *  counts. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/chain.hh"
#include "core/split.hh"
#include "opt/exttsp.hh"
#include "opt/hierarchy.hh"
#include "opt/perturb.hh"
#include "profile/profile.hh"
#include "sim/engine.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"
#include "trace/trace.hh"

namespace spikesim::opt {
namespace {

/** Synthetic app image with a profile and a recorded trace. */
struct Workload
{
    synth::SyntheticProgram image;
    profile::Profile prof;
    trace::TraceBuffer buf;

    explicit Workload(std::uint64_t seed = 9)
        : image(synth::buildSyntheticProgram(
              synth::SynthParams::kernelLike(seed))),
          prof(image.prog)
    {
        profile::ProfileRecorder rec(trace::ImageId::App, prof);
        trace::TeeSink tee({&rec, &buf});
        synth::CfgWalker w(image.prog, trace::ImageId::App, seed);
        trace::ExecContext ctx;
        for (int i = 0; i < 20; ++i) {
            w.run(image.entry("sys_read"), ctx, tee);
            w.run(image.entry("sched_switch"), ctx, tee);
        }
    }
};

Workload&
shared()
{
    static Workload w;
    return w;
}

/** Chained + fine-grain-split segments for every procedure. */
std::vector<core::CodeSegment>
splitSegments(const Workload& w)
{
    std::vector<core::CodeSegment> segs;
    for (program::ProcId p = 0; p < w.image.prog.numProcs(); ++p) {
        auto order = core::chainBasicBlocks(w.image.prog, p, w.prof);
        for (auto& seg : core::splitFineGrain(w.image.prog, p, order))
            segs.push_back(std::move(seg));
    }
    return segs;
}

/** Multiset of (proc, block) pairs — the invariant every reordering
 *  pass must preserve. */
std::map<std::pair<program::ProcId, program::BlockLocalId>, int>
blockMultiset(const std::vector<core::CodeSegment>& segs)
{
    std::map<std::pair<program::ProcId, program::BlockLocalId>, int> m;
    for (const core::CodeSegment& seg : segs)
        for (program::BlockLocalId b : seg.blocks)
            ++m[{seg.proc, b}];
    return m;
}

std::uint64_t
peakCount(const Workload& w, const core::CodeSegment& seg)
{
    std::uint64_t peak = 0;
    for (program::BlockLocalId b : seg.blocks)
        peak = std::max(peak, w.prof.blockCount(w.image.prog.globalBlockId(
                                  seg.proc, b)));
    return peak;
}

TEST(HotColdPartition, PlacesEverySegmentOnceAndClassifiesByPeak)
{
    Workload& w = shared();
    const std::vector<core::CodeSegment> segs = splitSegments(w);
    const auto before = blockMultiset(segs);

    for (std::uint64_t thr : {std::uint64_t{1}, std::uint64_t{4},
                              std::uint64_t{32}}) {
        const core::HotColdPartition part =
            core::partitionHotCold(w.image.prog, w.prof, segs, thr);
        EXPECT_EQ(part.hot.size() + part.cold.size(), segs.size());
        for (const core::CodeSegment& seg : part.hot)
            EXPECT_GE(peakCount(w, seg), thr);
        for (const core::CodeSegment& seg : part.cold)
            EXPECT_LT(peakCount(w, seg), thr);
        std::vector<core::CodeSegment> all = part.hot;
        all.insert(all.end(), part.cold.begin(), part.cold.end());
        EXPECT_EQ(blockMultiset(all), before);
    }
}

TEST(HotColdPartition, ThresholdOneKeepsEverythingExecutedHot)
{
    Workload& w = shared();
    const std::vector<core::CodeSegment> segs = splitSegments(w);
    const core::HotColdPartition part =
        core::partitionHotCold(w.image.prog, w.prof, segs, 1);
    for (const core::CodeSegment& seg : part.cold)
        EXPECT_EQ(peakCount(w, seg), 0u);
}

TEST(HierarchicalOrder, IsAPermutationWithHotPrefix)
{
    Workload& w = shared();
    const std::vector<core::CodeSegment> segs = splitSegments(w);
    const HierarchyResult hr =
        hierarchicalOrder(w.image.prog, w.prof, segs);
    EXPECT_EQ(hr.segments.size(), segs.size());
    EXPECT_EQ(blockMultiset(hr.segments), blockMultiset(segs));
    // The hot prefix is exactly the hot partition's segments.
    ASSERT_LE(hr.num_hot, hr.segments.size());
    HierarchyParams params;
    for (std::size_t i = 0; i < hr.segments.size(); ++i) {
        const bool hot = peakCount(w, hr.segments[i]) >=
                         params.hot_threshold;
        EXPECT_EQ(hot, i < hr.num_hot) << "segment " << i;
    }
}

TEST(RegionOps, PreserveRegionInvariantsAndBlockMultiset)
{
    Workload& w = shared();
    const core::HotColdPartition part = core::partitionHotCold(
        w.image.prog, w.prof, splitSegments(w), 4);

    Candidate cand;
    cand.segments = part.hot;
    cand.segments.insert(cand.segments.end(), part.cold.begin(),
                         part.cold.end());
    cand.regions = buildRegionMap(w.image.prog, cand.segments,
                                  part.hot.size(), 4096);
    ASSERT_EQ(validateRegions(cand), "");
    const auto before = blockMultiset(cand.segments);

    support::Pcg32 rng(123, 77);
    PerturbCounts counts;
    for (int i = 0; i < 500; ++i) {
        perturbOnce(cand, rng, &counts);
        ASSERT_EQ(validateRegions(cand), "") << "after op " << i;
        ASSERT_EQ(blockMultiset(cand.segments), before)
            << "after op " << i;
    }
    // The region draw set must have exercised the region operators.
    EXPECT_GT(counts.applied[static_cast<std::size_t>(
                  PerturbOp::RegionIntraMove)] +
                  counts.applied[static_cast<std::size_t>(
                      PerturbOp::RegionReorder)] +
                  counts.applied[static_cast<std::size_t>(
                      PerturbOp::HotColdShift)],
              0u);
    // And never drawn a whole-layout (flat-only) operator.
    for (PerturbOp op : {PerturbOp::SegmentSwap, PerturbOp::SegmentMove,
                         PerturbOp::SegmentReverse,
                         PerturbOp::SegmentRotate}) {
        EXPECT_EQ(counts.applied[static_cast<std::size_t>(op)], 0u);
        EXPECT_EQ(counts.noop[static_cast<std::size_t>(op)], 0u);
    }
}

/** The iTLB proxy term must agree directionally with a real iTLB
 *  replay: forcing every segment onto its own 4KB page inflates both
 *  the edge-weighted page-crossing count and the replayed miss count
 *  of a small capacity-starved TLB. */
TEST(ITlbCostDifferential, RanksPackedAbovePageStraddledLayouts)
{
    Workload& w = shared();
    const std::vector<core::CodeSegment> segs = splitSegments(w);

    core::AssignOptions packed;
    packed.segment_align = 4;
    core::AssignOptions straddled;
    straddled.segment_align = 4096;
    const core::Layout tight(w.image.prog, segs, packed);
    const core::Layout loose(w.image.prog, segs, straddled);

    ExtTspParams params;
    const double cost_tight = extTspITlbCost(tight, w.prof, params);
    const double cost_loose = extTspITlbCost(loose, w.prof, params);
    EXPECT_LT(cost_tight, cost_loose);

    const sim::ITlbSpec spec{2, 4096, 128};
    auto misses = [&](const core::Layout& layout) {
        const sim::Replayer rep(w.buf, layout, nullptr);
        const sim::ResolvedTrace rt =
            rep.resolve(sim::StreamFilter::AppOnly);
        return sim::replayITlb(rt, {&spec, 1}, nullptr)[0].misses;
    };
    const std::uint64_t misses_tight = misses(tight);
    const std::uint64_t misses_loose = misses(loose);
    EXPECT_LT(misses_tight, misses_loose);
}

} // namespace
} // namespace spikesim::opt
