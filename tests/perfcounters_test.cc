/**
 * @file
 * Tests for the perf_event_open self-profiling module (obs/perf.hh).
 *
 * Whether perf_event_open is permitted depends on the host (kernel
 * support, perf_event_paranoid, seccomp in containers), so these tests
 * assert the contract that must hold on EVERY host: construction and
 * the start/stop/sample cycle never fail, availability is reported
 * honestly, an unavailable module explains itself through reason(),
 * and samples are internally consistent — per-counter ok flags gate
 * the derived rates, and a machine that claims availability must
 * produce plausible (nonzero cycles/instructions) numbers for a
 * measured busy loop.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/perf.hh"

namespace spikesim::obs {
namespace {

/** A deliberately measurable amount of work (~tens of millions of
 *  instructions), returned so the optimizer cannot delete it. */
std::uint64_t
busyWork()
{
    std::uint64_t acc = 1;
    for (std::uint64_t i = 0; i < 20'000'000; ++i)
        acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    return acc;
}

TEST(PerfCounters, ConstructStartStopSampleNeverFails)
{
    PerfCounters perf;
    perf.start();
    volatile std::uint64_t sink = busyWork();
    (void)sink;
    perf.stop();
    PerfSample s = perf.sample();

    if (perf.available()) {
        EXPECT_TRUE(s.available);
        // At minimum the two core counters must have measured the busy
        // loop: ~20M multiply-adds cannot retire in zero cycles.
        EXPECT_TRUE(s.cycles.ok);
        EXPECT_TRUE(s.instructions.ok);
        EXPECT_GT(s.cycles.count, 0u);
        EXPECT_GT(s.instructions.count, 1'000'000u);
        EXPECT_GT(s.ipc(), 0.0);
    } else {
        // Denied hosts must explain themselves and stay inert.
        EXPECT_FALSE(s.available);
        EXPECT_FALSE(perf.reason().empty()) << "unavailable but silent";
        EXPECT_FALSE(s.cycles.ok);
        EXPECT_EQ(s.cycles.count, 0u);
        EXPECT_EQ(s.instructions.count, 0u);
    }
}

TEST(PerfCounters, DerivedRatesGateOnOkFlags)
{
    // A default-constructed sample has nothing measured: every derived
    // rate must degrade to 0.0 rather than divide by zero or report
    // garbage.
    PerfSample s;
    EXPECT_FALSE(s.available);
    EXPECT_EQ(s.ipc(), 0.0);
    EXPECT_EQ(s.branchMissPct(), 0.0);
    EXPECT_EQ(s.l1iMpki(), 0.0);
    EXPECT_EQ(s.l1dMpki(), 0.0);
    EXPECT_EQ(s.itlbMpki(), 0.0);
    EXPECT_EQ(s.frontendBoundPct(), 0.0);

    // Hand-built sample: rates follow from the counts.
    PerfSample m;
    m.available = true;
    m.cycles = {1000, true};
    m.instructions = {2000, true};
    m.branches = {500, true};
    m.branch_misses = {50, true};
    m.stalled_frontend = {250, true};
    m.l1i_misses = {4, true};
    m.l1d_misses = {8, true};
    m.itlb_misses = {2, true};
    EXPECT_DOUBLE_EQ(m.ipc(), 2.0);
    EXPECT_DOUBLE_EQ(m.branchMissPct(), 10.0);
    EXPECT_DOUBLE_EQ(m.l1iMpki(), 2.0);
    EXPECT_DOUBLE_EQ(m.l1dMpki(), 4.0);
    EXPECT_DOUBLE_EQ(m.itlbMpki(), 1.0);
    EXPECT_DOUBLE_EQ(m.frontendBoundPct(), 25.0);

    // Losing one input counter silences only the rates derived from
    // it; the rest keep reporting.
    m.branches.ok = false;
    EXPECT_EQ(m.branchMissPct(), 0.0);
    EXPECT_DOUBLE_EQ(m.ipc(), 2.0);
    m.instructions.ok = false;
    EXPECT_EQ(m.ipc(), 0.0);
    EXPECT_EQ(m.l1iMpki(), 0.0);
    EXPECT_DOUBLE_EQ(m.frontendBoundPct(), 25.0);
}

TEST(PerfCounters, SampleBeforeStartIsInert)
{
    PerfCounters perf;
    // No start()/stop() cycle: a sample must not crash, and on an
    // available host the counters were opened disabled, so nothing has
    // counted yet beyond at most the sample read itself.
    PerfSample s = perf.sample();
    EXPECT_EQ(s.available, perf.available());
    if (!perf.available()) {
        EXPECT_EQ(s.cycles.count, 0u);
    }
}

TEST(PerfCounters, RestartAccumulatesFreshWindow)
{
    PerfCounters perf;
    if (!perf.available())
        GTEST_SKIP() << "perf_event_open unavailable: " << perf.reason();
    perf.start();
    volatile std::uint64_t sink = busyWork();
    (void)sink;
    perf.stop();
    const PerfSample first = perf.sample();
    // start() resets: the second window measures only its own work.
    perf.start();
    perf.stop();
    const PerfSample second = perf.sample();
    ASSERT_TRUE(first.instructions.ok);
    ASSERT_TRUE(second.instructions.ok);
    EXPECT_LT(second.instructions.count, first.instructions.count);
}

} // namespace
} // namespace spikesim::obs
