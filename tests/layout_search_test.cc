/** @file Tests for the layout search engine (opt/search.hh). */

#include <gtest/gtest.h>

#include <vector>

#include "opt/perturb.hh"
#include "opt/search.hh"
#include "profile/profile.hh"
#include "support/threadpool.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"
#include "trace/trace.hh"

namespace spikesim::opt {
namespace {

/** Small app-image workload with a recorded trace (so the search's
 *  ground-truth re-rank path has something to replay). */
struct Workload
{
    synth::SyntheticProgram image;
    profile::Profile prof;
    trace::TraceBuffer buf;

    explicit Workload(std::uint64_t seed = 5)
        : image(synth::buildSyntheticProgram(
              synth::SynthParams::kernelLike(seed))),
          prof(image.prog)
    {
        profile::ProfileRecorder rec(trace::ImageId::App, prof);
        trace::TeeSink tee({&rec, &buf});
        synth::CfgWalker w(image.prog, trace::ImageId::App, seed);
        trace::ExecContext ctx;
        for (int i = 0; i < 25; ++i) {
            w.run(image.entry("sys_read"), ctx, tee);
            w.run(image.entry("sched_switch"), ctx, tee);
        }
    }
};

Workload&
shared()
{
    static Workload w;
    return w;
}

SearchOptions
smallBudget(std::uint64_t seed)
{
    SearchOptions sopts;
    sopts.seed = seed;
    sopts.epochs = 6;
    sopts.batch = 8;
    sopts.rerank_every = 3;
    return sopts;
}

/** Per-block address map of a layout (the byte-identity witness). */
std::vector<std::uint64_t>
addressMap(const core::Layout& layout, const program::Program& prog)
{
    std::vector<std::uint64_t> addrs;
    addrs.reserve(prog.numBlocks());
    for (program::GlobalBlockId g = 0; g < prog.numBlocks(); ++g)
        addrs.push_back(layout.blockAddr(g));
    return addrs;
}

TEST(LayoutSearch, SameSeedIsByteIdenticalAcrossPoolWidths)
{
    Workload& w = shared();
    core::PipelineOptions popts;
    popts.combo = core::OptCombo::All;

    support::ThreadPool pool(4);
    SearchResult serial = searchLayout(w.image.prog, w.prof, popts,
                                       smallBudget(42), &w.buf);
    SearchResult pooled = searchLayout(w.image.prog, w.prof, popts,
                                       smallBudget(42), &w.buf, nullptr,
                                       &pool);
    SearchResult again = searchLayout(w.image.prog, w.prof, popts,
                                      smallBudget(42), &w.buf, nullptr,
                                      &pool);

    EXPECT_EQ(fingerprint(candidateFromLayout(serial.layout)),
              fingerprint(candidateFromLayout(pooled.layout)));
    EXPECT_EQ(addressMap(serial.layout, w.image.prog),
              addressMap(pooled.layout, w.image.prog));
    EXPECT_EQ(addressMap(pooled.layout, w.image.prog),
              addressMap(again.layout, w.image.prog));
    // The whole audit trail is reproduced bit-exactly, not just the
    // winning layout.
    EXPECT_EQ(serial.best_score, pooled.best_score);
    EXPECT_EQ(serial.epoch_best, pooled.epoch_best);
    EXPECT_EQ(serial.best_misses, pooled.best_misses);
    EXPECT_EQ(serial.seed_misses, pooled.seed_misses);
}

TEST(LayoutSearch, ProgressIsMonotoneAndNeverBelowSeed)
{
    Workload& w = shared();
    core::PipelineOptions popts;
    popts.combo = core::OptCombo::All;
    SearchOptions sopts = smallBudget(7);
    SearchResult r =
        searchLayout(w.image.prog, w.prof, popts, sopts, &w.buf);

    ASSERT_EQ(r.epoch_best.size(),
              static_cast<std::size_t>(sopts.epochs));
    for (std::size_t i = 1; i < r.epoch_best.size(); ++i)
        EXPECT_GE(r.epoch_best[i], r.epoch_best[i - 1]);
    EXPECT_GE(r.best_score, r.seed_score);
    EXPECT_EQ(r.best_score, r.epoch_best.back());
    // Ground truth: the champion is never worse than the greedy seed
    // on the re-rank configuration (the seed competes in every
    // re-rank), and the re-rank curve never climbs.
    EXPECT_LE(r.best_misses, r.seed_misses);
    ASSERT_FALSE(r.rerank_curve.empty());
    for (std::size_t i = 1; i < r.rerank_curve.size(); ++i)
        EXPECT_LE(r.rerank_curve[i].misses,
                  r.rerank_curve[i - 1].misses);
    EXPECT_EQ(r.rerank_curve.back().misses, r.best_misses);
    EXPECT_EQ(r.proxy_evals,
              static_cast<std::uint64_t>(sopts.epochs) *
                  static_cast<std::uint64_t>(sopts.batch));
}

TEST(LayoutSearch, EmittedLayoutIsAValidPermutation)
{
    Workload& w = shared();
    core::PipelineOptions popts;
    popts.combo = core::OptCombo::All;
    SearchResult r = searchLayout(w.image.prog, w.prof, popts,
                                  smallBudget(1234), &w.buf);

    EXPECT_EQ(r.layout.validate(), "");
    // Every global block is placed exactly once.
    std::vector<int> placed(w.image.prog.numBlocks(), 0);
    for (const core::CodeSegment& seg : r.layout.segments()) {
        EXPECT_FALSE(seg.blocks.empty());
        for (program::BlockLocalId b : seg.blocks)
            ++placed[w.image.prog.globalBlockId(seg.proc, b)];
    }
    for (program::GlobalBlockId g = 0; g < w.image.prog.numBlocks(); ++g)
        EXPECT_EQ(placed[g], 1) << "block " << g;
}

TEST(LayoutSearch, ProxyOnlyModeNeverTouchesTheSimulator)
{
    Workload& w = shared();
    core::PipelineOptions popts;
    popts.combo = core::OptCombo::All;
    SearchResult r = searchLayout(w.image.prog, w.prof, popts,
                                  smallBudget(3)); // no trace
    EXPECT_EQ(r.sim_evals, 0u);
    EXPECT_EQ(r.best_misses, 0u);
    EXPECT_TRUE(r.rerank_curve.empty());
    EXPECT_GE(r.best_score, r.seed_score);
    EXPECT_EQ(r.layout.validate(), "");
}

TEST(LayoutSearch, ZeroEpochsReturnsTheSeedLayout)
{
    Workload& w = shared();
    core::PipelineOptions popts;
    popts.combo = core::OptCombo::All;
    SearchOptions sopts = smallBudget(9);
    sopts.epochs = 0;
    SearchResult r =
        searchLayout(w.image.prog, w.prof, popts, sopts, &w.buf);
    EXPECT_EQ(r.best_score, r.seed_score);
    EXPECT_EQ(r.best_misses, r.seed_misses);
    core::PipelineOptions tight = popts;
    core::Layout greedy =
        core::buildLayout(w.image.prog, w.prof, tight);
    EXPECT_EQ(fingerprint(candidateFromLayout(r.layout)),
              fingerprint(candidateFromLayout(greedy)));
}

TEST(Perturb, OperatorsPreserveLayoutInvariants)
{
    Workload& w = shared();
    core::PipelineOptions popts;
    popts.combo = core::OptCombo::All;
    core::AssignOptions aopts;
    Candidate cand = candidateFromLayout(
        core::buildLayout(w.image.prog, w.prof, popts));

    support::Pcg32 rng(99, 1);
    PerturbCounts counts;
    for (int round = 0; round < 50; ++round) {
        perturb(cand, rng, 3, &counts);
        core::Layout layout = materialize(cand, w.image.prog, aopts);
        ASSERT_EQ(layout.validate(), "") << "round " << round;
    }
    // Across 150 drawn operators, a healthy majority must have found a
    // legal application site (the image has thousands of segments).
    std::uint64_t applied = 0, noop = 0;
    for (std::size_t i = 0; i < kNumPerturbOps; ++i) {
        applied += counts.applied[i];
        noop += counts.noop[i];
    }
    EXPECT_EQ(applied + noop, 150u);
    EXPECT_GT(applied, noop);
}

TEST(Perturb, SameRngStreamGivesSameCandidates)
{
    Workload& w = shared();
    core::PipelineOptions popts;
    popts.combo = core::OptCombo::All;
    Candidate a = candidateFromLayout(
        core::buildLayout(w.image.prog, w.prof, popts));
    Candidate b = a;
    support::Pcg32 ra(7, 3), rb(7, 3);
    perturb(a, ra, 10);
    perturb(b, rb, 10);
    EXPECT_EQ(fingerprint(a), fingerprint(b));
    // And a different stream diverges (overwhelmingly likely on a
    // many-segment image).
    Candidate c = candidateFromLayout(
        core::buildLayout(w.image.prog, w.prof, popts));
    support::Pcg32 rc(8, 3);
    perturb(c, rc, 10);
    EXPECT_NE(fingerprint(c), fingerprint(a));
}

} // namespace
} // namespace spikesim::opt
