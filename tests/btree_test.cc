/** @file Tests for the B+tree index. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "db/btree.hh"
#include "support/rng.hh"

namespace spikesim::db {
namespace {

struct Fixture
{
    SimDisk disk;
    BufferPool pool{disk, 64};
    Wal wal{disk};
    PageAllocator alloc{1};

    BTree
    make()
    {
        PageId anchor = alloc.alloc();
        return BTree::create(pool, wal, alloc, anchor);
    }
};

RowId
rid(std::uint32_t n)
{
    return {n, static_cast<std::uint16_t>(n % 7)};
}

TEST(BTree, EmptyTreeFindsNothing)
{
    Fixture f;
    BTree t = f.make();
    EXPECT_FALSE(t.search(42).has_value());
    EXPECT_EQ(t.height(), 1);
    EXPECT_EQ(t.numEntries(), 0u);
    EXPECT_EQ(t.check(), "");
}

TEST(BTree, InsertAndSearch)
{
    Fixture f;
    BTree t = f.make();
    EXPECT_TRUE(t.insert(1, 10, rid(10)));
    EXPECT_TRUE(t.insert(1, 5, rid(5)));
    EXPECT_TRUE(t.insert(1, 20, rid(20)));
    auto r = t.search(5);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, rid(5));
    EXPECT_FALSE(t.search(7).has_value());
    EXPECT_EQ(t.numEntries(), 3u);
    EXPECT_EQ(t.check(), "");
}

TEST(BTree, RejectsDuplicates)
{
    Fixture f;
    BTree t = f.make();
    EXPECT_TRUE(t.insert(1, 10, rid(1)));
    EXPECT_FALSE(t.insert(1, 10, rid(2)));
    EXPECT_EQ(*t.search(10), rid(1));
}

TEST(BTree, SplitsGrowTheTree)
{
    Fixture f;
    BTree t = f.make();
    // Leaf fanout is ~(8128/16)=508; 3000 keys forces height >= 2.
    for (std::int64_t k = 0; k < 3000; ++k)
        ASSERT_TRUE(t.insert(1, k, rid(static_cast<std::uint32_t>(k))));
    EXPECT_GE(t.height(), 2);
    EXPECT_EQ(t.numEntries(), 3000u);
    EXPECT_EQ(t.check(), "");
    for (std::int64_t k = 0; k < 3000; k += 37)
        EXPECT_TRUE(t.search(k).has_value()) << k;
}

TEST(BTree, ReverseInsertionOrder)
{
    Fixture f;
    BTree t = f.make();
    for (std::int64_t k = 2999; k >= 0; --k)
        ASSERT_TRUE(t.insert(1, k, rid(static_cast<std::uint32_t>(k))));
    EXPECT_EQ(t.numEntries(), 3000u);
    EXPECT_EQ(t.check(), "");
}

TEST(BTree, RemoveIsLazyButCorrect)
{
    Fixture f;
    BTree t = f.make();
    for (std::int64_t k = 0; k < 100; ++k)
        t.insert(1, k, rid(static_cast<std::uint32_t>(k)));
    EXPECT_TRUE(t.remove(1, 50));
    EXPECT_FALSE(t.remove(1, 50));
    EXPECT_FALSE(t.search(50).has_value());
    EXPECT_EQ(t.numEntries(), 99u);
    EXPECT_EQ(t.check(), "");
}

TEST(BTree, ScanIsOrderedAndBounded)
{
    Fixture f;
    BTree t = f.make();
    for (std::int64_t k = 0; k < 2000; k += 2)
        t.insert(1, k, rid(static_cast<std::uint32_t>(k)));
    std::vector<std::int64_t> keys;
    t.scan(100, 200, [&](std::int64_t k, RowId) { keys.push_back(k); });
    ASSERT_EQ(keys.size(), 51u);
    EXPECT_EQ(keys.front(), 100);
    EXPECT_EQ(keys.back(), 200);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(BTree, OpenRestoresState)
{
    Fixture f;
    PageId anchor;
    {
        BTree t = f.make();
        anchor = t.anchorPage();
        for (std::int64_t k = 0; k < 1500; ++k)
            t.insert(1, k, rid(static_cast<std::uint32_t>(k)));
    }
    BTree reopened = BTree::open(f.pool, f.wal, f.alloc, anchor);
    EXPECT_EQ(reopened.numEntries(), 1500u);
    EXPECT_TRUE(reopened.search(1234).has_value());
    EXPECT_EQ(reopened.check(), "");
}

/** Random workloads across seeds and sizes. */
class BTreeRandom
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(BTreeRandom, MatchesSortedVectorModel)
{
    auto [n, seed] = GetParam();
    Fixture f;
    BTree t = f.make();
    support::Pcg32 rng(seed);
    std::vector<std::int64_t> model;
    for (int i = 0; i < n; ++i) {
        std::int64_t k = rng.nextRange(0, n * 2);
        bool inserted = t.insert(1, k, rid(static_cast<std::uint32_t>(k)));
        bool fresh = std::find(model.begin(), model.end(), k) ==
                     model.end();
        EXPECT_EQ(inserted, fresh);
        if (fresh)
            model.push_back(k);
    }
    // Random removals of half the keys.
    std::sort(model.begin(), model.end());
    std::vector<std::int64_t> removed;
    for (std::size_t i = 0; i < model.size(); i += 2)
        removed.push_back(model[i]);
    for (std::int64_t k : removed)
        EXPECT_TRUE(t.remove(1, k));
    EXPECT_EQ(t.check(), "");
    // Verify membership matches the model.
    for (std::int64_t k : model) {
        bool should_exist =
            std::find(removed.begin(), removed.end(), k) == removed.end();
        EXPECT_EQ(t.search(k).has_value(), should_exist) << k;
    }
    EXPECT_EQ(t.numEntries(), model.size() - removed.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreeRandom,
    ::testing::Combine(::testing::Values(50, 500, 2000),
                       ::testing::Values(1u, 2u, 3u)));

TEST(BTree, HeightGrowsLogarithmically)
{
    Fixture bigger;
    BufferPool pool(bigger.disk, 512);
    Wal wal(bigger.disk);
    PageAllocator alloc(1);
    PageId anchor = alloc.alloc();
    BTree t = BTree::create(pool, wal, alloc, anchor);
    for (std::int64_t k = 0; k < 100'000; ++k)
        t.insert(1, k, rid(static_cast<std::uint32_t>(k)));
    // Fanout ~508: 100k keys fit in height 3 easily; never more than 4.
    EXPECT_GE(t.height(), 2);
    EXPECT_LE(t.height(), 4);
    EXPECT_EQ(t.check(), "");
}

} // namespace
} // namespace spikesim::db
