/** @file Tests for profile collection and the call graph. */

#include <gtest/gtest.h>

#include <sstream>

#include "profile/profile.hh"
#include "program/builder.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"

namespace spikesim::profile {
namespace {

using program::EdgeKind;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

Program
twoProcs()
{
    Program p("t");
    {
        ProcedureBuilder b("caller");
        auto c = b.addBlock(1, Terminator::Call, 1);
        auto r = b.addBlock(1, Terminator::Return);
        b.addEdge(c, r, EdgeKind::FallThrough);
        p.addProcedure(b.build());
    }
    {
        ProcedureBuilder b("callee");
        auto e = b.addBlock(1, Terminator::FallThrough);
        auto r = b.addBlock(1, Terminator::Return);
        b.addEdge(e, r, EdgeKind::FallThrough);
        p.addProcedure(b.build());
    }
    return p;
}

TEST(Profile, RecorderCountsBlocksEdgesCalls)
{
    Program p = twoProcs();
    Profile prof(p);
    ProfileRecorder rec(trace::ImageId::App, prof);
    synth::CfgWalker w(p, trace::ImageId::App, 1);
    trace::ExecContext ctx;
    for (int i = 0; i < 10; ++i)
        w.run(0, ctx, rec);
    EXPECT_EQ(prof.blockCount(0), 10u);
    EXPECT_EQ(prof.blockCount(1), 10u);
    EXPECT_EQ(prof.blockCount(2), 10u); // callee entry
    EXPECT_EQ(prof.edgeCount(0, 1), 10u);
    EXPECT_EQ(prof.callCount(0, 1), 10u);
    EXPECT_EQ(prof.procCount(1), 10u);
    EXPECT_EQ(prof.dynamicInstrs(), 40u);
}

TEST(Profile, RecorderIgnoresOtherImages)
{
    Program p = twoProcs();
    Profile prof(p);
    ProfileRecorder rec(trace::ImageId::Kernel, prof);
    synth::CfgWalker w(p, trace::ImageId::App, 1);
    trace::ExecContext ctx;
    w.run(0, ctx, rec);
    EXPECT_EQ(prof.blockCount(0), 0u);
}

TEST(Profile, FlowConservation)
{
    // For every non-return block: block count == sum of out-edge
    // counts (control must leave the block somehow).
    synth::SyntheticProgram sp =
        synth::buildSyntheticProgram(synth::SynthParams::kernelLike(3));
    Profile prof(sp.prog);
    ProfileRecorder rec(trace::ImageId::Kernel, prof);
    synth::CfgWalker w(sp.prog, trace::ImageId::Kernel, 3);
    trace::ExecContext ctx;
    for (int i = 0; i < 50; ++i)
        w.run(sp.entry("sys_read"), ctx, rec, {});

    for (program::ProcId pid = 0; pid < sp.prog.numProcs(); ++pid) {
        const program::Procedure& proc = sp.prog.proc(pid);
        for (program::BlockLocalId b = 0; b < proc.blocks.size(); ++b) {
            if (proc.blocks[b].term == Terminator::Return)
                continue;
            program::GlobalBlockId g = sp.prog.globalBlockId(pid, b);
            std::uint64_t out = 0;
            for (const auto& e : proc.edges)
                if (e.from == b)
                    out += prof.edgeCount(
                        g, sp.prog.globalBlockId(pid, e.to));
            EXPECT_EQ(prof.blockCount(g), out)
                << "proc " << proc.name << " block " << b;
        }
    }
}

TEST(Profile, SaveLoadRoundTrips)
{
    Program p = twoProcs();
    Profile prof(p);
    prof.addBlock(0, 7);
    prof.addBlock(3, 2);
    prof.addEdge(0, 1, 5);
    prof.addCall(0, 1, 7);
    std::stringstream ss;
    prof.save(ss);
    Profile loaded = Profile::load(p, ss);
    EXPECT_EQ(loaded.blockCount(0), 7u);
    EXPECT_EQ(loaded.blockCount(3), 2u);
    EXPECT_EQ(loaded.blockCount(1), 0u);
    EXPECT_EQ(loaded.edgeCount(0, 1), 5u);
    EXPECT_EQ(loaded.callCount(0, 1), 7u);
}

TEST(Profile, MergeAddsEverything)
{
    Program p = twoProcs();
    Profile a(p), b(p);
    a.addBlock(0, 1);
    b.addBlock(0, 2);
    b.addEdge(0, 1, 3);
    a.merge(b);
    EXPECT_EQ(a.blockCount(0), 3u);
    EXPECT_EQ(a.edgeCount(0, 1), 3u);
}

TEST(CallGraph, CollapsesParallelEdges)
{
    Program p = twoProcs();
    Profile prof(p);
    prof.addCall(0, 1, 4);
    prof.addCall(1, 1, 6); // another call site in proc 0 (block 1)
    auto cg = CallGraph::fromProfile(prof);
    EXPECT_EQ(cg.numNodes(), 2u);
    EXPECT_EQ(cg.weight(0, 1), 10u);
    EXPECT_EQ(cg.weight(1, 0), 0u);
    ASSERT_EQ(cg.edges().size(), 1u);
}

TEST(Profile, EdgesAndCallsEnumerate)
{
    Program p = twoProcs();
    Profile prof(p);
    prof.addEdge(0, 1, 2);
    prof.addEdge(2, 3, 4);
    prof.addCall(0, 1, 2);
    EXPECT_EQ(prof.edges().size(), 2u);
    EXPECT_EQ(prof.calls().size(), 1u);
}

} // namespace
} // namespace spikesim::profile
