/** @file Tests for trace events, buffers and sinks. */

#include <gtest/gtest.h>

#include "trace/trace.hh"

namespace spikesim::trace {
namespace {

TEST(TraceBuffer, RecordsBlockEvents)
{
    TraceBuffer buf;
    ExecContext ctx;
    ctx.cpu = 2;
    ctx.process = 5;
    buf.onBlock(ctx, ImageId::App, 100);
    buf.onBlock(ctx, ImageId::Kernel, 7);
    ASSERT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.events()[0].block, 100u);
    EXPECT_EQ(buf.events()[0].cpu, 2);
    EXPECT_EQ(buf.events()[0].process, 5);
    EXPECT_EQ(buf.events()[0].image, ImageId::App);
    EXPECT_EQ(buf.imageEvents(ImageId::App), 1u);
    EXPECT_EQ(buf.imageEvents(ImageId::Kernel), 1u);
}

TEST(TraceBuffer, RecordsDataEventsAsWordIndices)
{
    TraceBuffer buf;
    ExecContext ctx;
    buf.onData(ctx, 0x1000);
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.events()[0].image, ImageId::Data);
    EXPECT_EQ(buf.events()[0].block, 0x1000u >> 2);
    EXPECT_EQ(buf.imageEvents(ImageId::Data), 1u);
}

TEST(TraceBuffer, ClearResets)
{
    TraceBuffer buf;
    ExecContext ctx;
    buf.onBlock(ctx, ImageId::App, 1);
    buf.clear();
    EXPECT_TRUE(buf.empty());
}

TEST(TeeSink, FansOutAllCallbacks)
{
    struct Counter : TraceSink
    {
        int blocks = 0, edges = 0, calls = 0, data = 0;
        void
        onBlock(const ExecContext&, ImageId,
                program::GlobalBlockId) override
        {
            ++blocks;
        }
        void
        onEdge(ImageId, program::GlobalBlockId,
               program::GlobalBlockId) override
        {
            ++edges;
        }
        void
        onCall(ImageId, program::GlobalBlockId, program::ProcId) override
        {
            ++calls;
        }
        void
        onData(const ExecContext&, std::uint64_t) override
        {
            ++data;
        }
    } a, b;
    TeeSink tee({&a, &b});
    ExecContext ctx;
    tee.onBlock(ctx, ImageId::App, 1);
    tee.onEdge(ImageId::App, 1, 2);
    tee.onCall(ImageId::App, 1, 3);
    tee.onData(ctx, 0x40);
    for (const auto* c : {&a, &b}) {
        EXPECT_EQ(c->blocks, 1);
        EXPECT_EQ(c->edges, 1);
        EXPECT_EQ(c->calls, 1);
        EXPECT_EQ(c->data, 1);
    }
}

TEST(TraceEvent, StaysCompact)
{
    EXPECT_EQ(sizeof(TraceEvent), 8u);
}

} // namespace
} // namespace spikesim::trace
