/**
 * @file
 * Randomized differential tests for the unified parallel replay engine
 * (sim/engine.hh): on random programs and multi-CPU traces with app +
 * kernel images and data noise, every engine family — fused i-cache
 * with interference, three-C, stream buffers, instrumented word stats,
 * iTLB, full hierarchy with coherence, and sequence analysis — must be
 * bit-identical to the scalar per-config Replayer/metrics oracles,
 * both serial-fused (no pool) and sharded across a thread pool,
 * including a pool wider than the trace's CPU count (which engages the
 * per-(cpu, config-chunk) sharding path).
 *
 * Every family is additionally replayed through the structure-of-arrays
 * overloads (sim/soa.hh) over a *directly resolved* SoA trace
 * (Replayer::resolveSoA — no transpose), and the i-cache, three-C, and
 * stream-buffer families through every SoA kernel runnable here —
 * forced scalar, forced AVX2, and forced AVX-512 (sim/kernels.hh) —
 * against the same oracles. The SIMD kernels have no tolerance: miss
 * counts, classification counts, and interference matrices must match
 * the scalar Replayer bit for bit. Direct resolve itself is
 * bit-compared against transpose-of-AoS across every filter,
 * include_data setting, and CPU count.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/layout.hh"
#include "metrics/sequence.hh"
#include "program/builder.hh"
#include "sim/engine.hh"
#include "support/rng.hh"
#include "support/threadpool.hh"

namespace spikesim::sim {
namespace {

using program::EdgeKind;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

/** A program of `blocks` random-sized blocks (paired into procs). */
Program
randomProgram(const char* name, int blocks, std::uint32_t seed)
{
    support::Pcg32 rng(seed);
    Program p(name);
    for (int i = 0; i < blocks; i += 2) {
        ProcedureBuilder b("p" + std::to_string(i));
        auto a = b.addBlock(1 + rng.nextBounded(32),
                            Terminator::FallThrough);
        auto r = b.addBlock(1 + rng.nextBounded(32), Terminator::Return);
        b.addEdge(a, r, EdgeKind::FallThrough);
        p.addProcedure(b.build());
    }
    EXPECT_EQ(p.validate(), "");
    return p;
}

/**
 * A trace with loop-like locality spread across CPUs and both images,
 * plus data refs: mostly nearby re-executions with occasional far
 * jumps, 30% kernel blocks, 10% of events followed by a data touch on
 * a small hot region (so several CPUs hit the same data lines and the
 * coherence model has migrations to count).
 */
trace::TraceBuffer
randomTrace(int blocks, int events, int num_cpus, std::uint32_t seed)
{
    support::Pcg32 rng(seed);
    trace::TraceBuffer buf;
    std::vector<trace::ExecContext> ctx(num_cpus);
    std::vector<std::uint32_t> cur(num_cpus, 0);
    for (int c = 0; c < num_cpus; ++c)
        ctx[c].cpu = static_cast<std::uint8_t>(c);
    for (int i = 0; i < events; ++i) {
        int c = static_cast<int>(
            rng.nextBounded(static_cast<std::uint32_t>(num_cpus)));
        if (rng.nextBool(0.15))
            cur[c] = rng.nextBounded(static_cast<std::uint32_t>(blocks));
        else
            cur[c] = static_cast<std::uint32_t>(
                (cur[c] + 1) % static_cast<std::uint32_t>(blocks));
        trace::ImageId image = rng.nextBool(0.3)
                                   ? trace::ImageId::Kernel
                                   : trace::ImageId::App;
        buf.onBlock(ctx[c], image, cur[c]);
        if (rng.nextBool(0.1))
            buf.onData(ctx[c], 0x80000000ULL + rng.nextBounded(1 << 14));
    }
    return buf;
}

/** The test grid: a column of mixed geometries. */
std::vector<mem::CacheConfig>
testConfigs()
{
    return {{8 * 1024, 32, 1}, {32 * 1024, 64, 2}, {64 * 1024, 128, 4}};
}

const StreamFilter kFilters[] = {StreamFilter::AppOnly,
                                 StreamFilter::KernelOnly,
                                 StreamFilter::Combined};

/** Kernel modes runnable here: scalar always, AVX2 and AVX-512 when
 *  the host can. */
std::vector<SimdMode>
runnableModes()
{
    std::vector<SimdMode> modes{SimdMode::Scalar};
    if (simdAvailable())
        modes.push_back(SimdMode::Simd);
    if (avx512Available())
        modes.push_back(SimdMode::Avx512);
    return modes;
}

const char*
modeLabel(SimdMode mode)
{
    switch (mode) {
    case SimdMode::Simd:
        return "soa avx2";
    case SimdMode::Avx512:
        return "soa avx512";
    default:
        return "soa scalar";
    }
}

template <typename H>
void
expectHistEq(const H& a, const H& b, const char* what)
{
    ASSERT_EQ(a.numBuckets(), b.numBuckets()) << what;
    for (std::size_t i = 0; i < a.numBuckets(); ++i)
        EXPECT_EQ(a.bucket(i), b.bucket(i)) << what << " bucket " << i;
}

void
expectStatsEq(const mem::HierarchyStats& a, const mem::HierarchyStats& b,
              const char* what)
{
    EXPECT_EQ(a.l1i.accesses, b.l1i.accesses) << what;
    EXPECT_EQ(a.l1i.misses, b.l1i.misses) << what;
    EXPECT_EQ(a.l1d.accesses, b.l1d.accesses) << what;
    EXPECT_EQ(a.l1d.misses, b.l1d.misses) << what;
    EXPECT_EQ(a.l2i.accesses, b.l2i.accesses) << what;
    EXPECT_EQ(a.l2i.misses, b.l2i.misses) << what;
    EXPECT_EQ(a.l2d.accesses, b.l2d.accesses) << what;
    EXPECT_EQ(a.l2d.misses, b.l2d.misses) << what;
    EXPECT_EQ(a.itlb_misses, b.itlb_misses) << what;
    EXPECT_EQ(a.comm_misses, b.comm_misses) << what;
}

/** Fixture state: one random workload per CPU count. */
struct Workload
{
    Program app;
    Program kern;
    core::Layout app_layout;
    core::Layout kern_layout;
    trace::TraceBuffer buf;
    Replayer rep;

    Workload(int num_cpus, std::uint32_t seed)
        : app(randomProgram("app", 120, seed)),
          kern(randomProgram("kern", 120, seed + 1)),
          app_layout(core::baselineLayout(app, 0)),
          kern_layout(core::baselineLayout(kern, 0x400000)),
          buf(randomTrace(120, 20000, num_cpus, seed + 2)),
          rep(buf, app_layout, &kern_layout)
    {
    }
};

/** Pools exercised against every oracle: none (serial fused), one
 *  matching a small host, and one wider than any trace's CPU count
 *  (config-chunked sharding). */
struct Pools
{
    support::ThreadPool narrow{2};
    support::ThreadPool wide{8};
    std::vector<support::ThreadPool*> all{nullptr, &narrow, &wide};
};

TEST(ReplayEngine, MatchesICacheOracleRandomized)
{
    Pools pools;
    const auto configs = testConfigs();
    const auto modes = runnableModes();
    for (int cpus : {1, 2, 4, 8}) {
        Workload w(cpus, 100 + static_cast<std::uint32_t>(cpus));
        ASSERT_EQ(w.rep.numCpus(), cpus);
        for (StreamFilter filter : kFilters) {
            ResolvedTrace trace = w.rep.resolve(filter);
            const ResolvedTraceSoA soa = w.rep.resolveSoA(filter);
            std::vector<ICacheReplayResult> oracle;
            for (const auto& c : configs)
                oracle.push_back(w.rep.icache(c, filter));
            auto expect_oracle =
                [&](const std::vector<ICacheReplayResult>& col,
                    const char* label) {
                    ASSERT_EQ(col.size(), oracle.size()) << label;
                    for (std::size_t i = 0; i < oracle.size(); ++i) {
                        const auto& r = oracle[i];
                        EXPECT_EQ(col[i].accesses, r.accesses)
                            << label << " cpus " << cpus << " cfg " << i;
                        EXPECT_EQ(col[i].misses, r.misses)
                            << label << " cpus " << cpus << " cfg " << i;
                        EXPECT_EQ(col[i].app_misses, r.app_misses)
                            << label;
                        EXPECT_EQ(col[i].kernel_misses, r.kernel_misses)
                            << label;
                        for (int m = 0; m < 2; ++m)
                            for (int v = 0; v < 3; ++v)
                                EXPECT_EQ(
                                    col[i].interference.counts[m][v],
                                    r.interference.counts[m][v])
                                    << label << " cpus " << cpus
                                    << " config " << i;
                    }
                };
            for (support::ThreadPool* pool : pools.all) {
                expect_oracle(replayICache(trace, configs, pool), "aos");
                for (SimdMode mode : modes)
                    expect_oracle(
                        replayICache(soa, configs, mode, pool),
                        modeLabel(mode));
            }
        }
    }
}

TEST(ReplayEngine, MatchesThreeCsAndStreamBufferOracles)
{
    Pools pools;
    const auto configs = testConfigs();
    const auto modes = runnableModes();
    for (int cpus : {1, 3, 8}) {
        Workload w(cpus, 200 + static_cast<std::uint32_t>(cpus));
        for (StreamFilter filter : kFilters) {
            ResolvedTrace trace = w.rep.resolve(filter);
            const ResolvedTraceSoA soa = w.rep.resolveSoA(filter);
            std::vector<mem::ThreeCStats> t_oracle;
            std::vector<mem::StreamBufferStats> s_oracle;
            for (const auto& c : configs) {
                t_oracle.push_back(w.rep.threeCs(c, filter));
                s_oracle.push_back(w.rep.streamBuffer(c, 4, filter));
            }
            auto expect_threec =
                [&](const std::vector<mem::ThreeCStats>& col,
                    const char* label) {
                    ASSERT_EQ(col.size(), t_oracle.size()) << label;
                    for (std::size_t i = 0; i < col.size(); ++i) {
                        const auto& t = t_oracle[i];
                        EXPECT_EQ(col[i].accesses(), t.accesses())
                            << label << " cpus " << cpus << " cfg " << i;
                        EXPECT_EQ(col[i].compulsory, t.compulsory)
                            << label << " cfg " << i;
                        EXPECT_EQ(col[i].capacity, t.capacity)
                            << label << " cfg " << i;
                        EXPECT_EQ(col[i].conflict, t.conflict)
                            << label << " cfg " << i;
                    }
                };
            auto expect_sbuf =
                [&](const std::vector<mem::StreamBufferStats>& col,
                    const char* label) {
                    ASSERT_EQ(col.size(), s_oracle.size()) << label;
                    for (std::size_t i = 0; i < col.size(); ++i) {
                        const auto& s = s_oracle[i];
                        EXPECT_EQ(col[i].accesses(), s.accesses())
                            << label << " cpus " << cpus << " cfg " << i;
                        EXPECT_EQ(col[i].l1Misses(), s.l1Misses())
                            << label << " cfg " << i;
                        EXPECT_EQ(col[i].streamHits(), s.streamHits())
                            << label << " cfg " << i;
                        EXPECT_EQ(col[i].demandMisses(),
                                  s.demandMisses())
                            << label << " cfg " << i;
                    }
                };
            for (support::ThreadPool* pool : pools.all) {
                expect_threec(replayThreeCs(trace, configs, pool),
                              "aos");
                expect_sbuf(replayStreamBuffer(trace, configs, 4, pool),
                            "aos");
                for (SimdMode mode : modes) {
                    expect_threec(
                        replayThreeCs(soa, configs, mode, pool),
                        modeLabel(mode));
                    expect_sbuf(replayStreamBuffer(soa, configs, 4,
                                                   mode, pool),
                                modeLabel(mode));
                }
            }
        }
    }
}

TEST(ReplayEngine, MatchesInstrumentedOracleIncludingFlush)
{
    Pools pools;
    const auto configs = testConfigs();
    for (int cpus : {2, 5}) {
        Workload w(cpus, 300 + static_cast<std::uint32_t>(cpus));
        for (StreamFilter filter : kFilters) {
            ResolvedTrace trace = w.rep.resolve(filter);
            const ResolvedTraceSoA soa = w.rep.resolveSoA(filter);
            for (bool flush : {false, true}) {
                for (support::ThreadPool* pool : pools.all) {
                    auto col =
                        replayInstrumented(trace, configs, flush, pool);
                    auto col_soa =
                        replayInstrumented(soa, configs, flush, pool);
                    for (std::size_t i = 0; i < configs.size(); ++i) {
                        auto r = w.rep.instrumented(configs[i], filter,
                                                    flush);
                        expectHistEq(col[i].words_used, r.words_used,
                                     "words_used");
                        expectHistEq(col[i].word_reuse, r.word_reuse,
                                     "word_reuse");
                        expectHistEq(col[i].lifetimes, r.lifetimes,
                                     "lifetimes");
                        // Bit-identical, not just close: the engine
                        // replays the oracle's FP operation sequence.
                        EXPECT_EQ(col[i].unused_word_fraction,
                                  r.unused_word_fraction);
                        EXPECT_EQ(col[i].misses, r.misses);
                        expectHistEq(col_soa[i].words_used,
                                     r.words_used, "soa words_used");
                        expectHistEq(col_soa[i].word_reuse,
                                     r.word_reuse, "soa word_reuse");
                        expectHistEq(col_soa[i].lifetimes, r.lifetimes,
                                     "soa lifetimes");
                        EXPECT_EQ(col_soa[i].unused_word_fraction,
                                  r.unused_word_fraction);
                        EXPECT_EQ(col_soa[i].misses, r.misses);
                    }
                }
            }
        }
    }
}

TEST(ReplayEngine, MatchesITlbOracleAndDynamicInstrs)
{
    Pools pools;
    const std::vector<ITlbSpec> specs = {
        {16, 4 * 1024, 32}, {64, 8 * 1024, 64}, {128, 8 * 1024, 128}};
    const auto modes = runnableModes();
    for (int cpus : {1, 4}) {
        Workload w(cpus, 400 + static_cast<std::uint32_t>(cpus));
        for (StreamFilter filter : kFilters) {
            ResolvedTrace trace = w.rep.resolve(filter);
            const ResolvedTraceSoA soa = w.rep.resolveSoA(filter);
            EXPECT_EQ(trace.instrs, w.rep.dynamicInstrs(filter));
            EXPECT_EQ(soa.instrs, trace.instrs);
            for (support::ThreadPool* pool : pools.all) {
                auto col = replayITlb(trace, specs, pool);
                for (std::size_t i = 0; i < specs.size(); ++i) {
                    auto r = w.rep.itlb(specs[i], filter);
                    EXPECT_EQ(col[i].accesses, r.accesses);
                    EXPECT_EQ(col[i].misses, r.misses);
                }
                // The iTLB kernel is the same scalar walk under every
                // mode; replaying under each pins that equivalence.
                for (SimdMode mode : modes) {
                    auto col_soa = replayITlb(soa, specs, mode, pool);
                    for (std::size_t i = 0; i < specs.size(); ++i) {
                        EXPECT_EQ(col_soa[i].accesses, col[i].accesses)
                            << modeLabel(mode) << " spec " << i;
                        EXPECT_EQ(col_soa[i].misses, col[i].misses)
                            << modeLabel(mode) << " spec " << i;
                    }
                }
            }
        }
    }
}

TEST(ReplayEngine, MatchesHierarchyOracleWithCoherence)
{
    Pools pools;
    std::vector<mem::HierarchyConfig> configs(2);
    configs[1].l1i = {8 * 1024, 32, 1};
    configs[1].l1d = {8 * 1024, 32, 1};
    configs[1].l2 = {2 * 1024 * 1024, 64, 1};
    configs[1].itlb_entries = 48;
    for (int cpus : {1, 2, 4, 8}) {
        Workload w(cpus, 500 + static_cast<std::uint32_t>(cpus));
        for (bool coherence : {false, true}) {
            ResolvedTrace trace =
                w.rep.resolve(StreamFilter::Combined, true);
            const ResolvedTraceSoA soa =
                w.rep.resolveSoA(StreamFilter::Combined, true);
            for (support::ThreadPool* pool : pools.all) {
                auto col =
                    replayHierarchy(trace, configs, coherence, pool);
                auto col_soa =
                    replayHierarchy(soa, configs, coherence, pool);
                for (std::size_t i = 0; i < configs.size(); ++i) {
                    auto r = w.rep.hierarchy(configs[i], true,
                                             coherence);
                    expectStatsEq(col[i].total, r.total, "total");
                    ASSERT_EQ(col[i].per_cpu.size(),
                              r.per_cpu.size());
                    for (std::size_t c = 0; c < r.per_cpu.size(); ++c)
                        expectStatsEq(col[i].per_cpu[c], r.per_cpu[c],
                                      "per_cpu");
                    EXPECT_EQ(col[i].instrs, r.instrs);
                    EXPECT_EQ(col[i].fetch_breaks, r.fetch_breaks);
                    expectStatsEq(col_soa[i].total, r.total,
                                  "soa total");
                    ASSERT_EQ(col_soa[i].per_cpu.size(),
                              r.per_cpu.size());
                    for (std::size_t c = 0; c < r.per_cpu.size(); ++c)
                        expectStatsEq(col_soa[i].per_cpu[c],
                                      r.per_cpu[c], "soa per_cpu");
                    EXPECT_EQ(col_soa[i].instrs, r.instrs);
                    EXPECT_EQ(col_soa[i].fetch_breaks, r.fetch_breaks);
                }
            }
        }
    }
}

/**
 * The direct SoA resolve (Replayer::resolveSoA) must be bit-identical
 * to the retained transpose route (toSoA of Replayer::resolve) —
 * every column element, partition offset, data ref, and total, across
 * all filters, both include_data settings, and 1/2/4/8-CPU traces.
 * This is the differential oracle that lets the engine run on direct
 * resolve alone.
 */
TEST(ReplayEngine, DirectSoAResolveMatchesTransposeOfAoS)
{
    for (int cpus : {1, 2, 4, 8}) {
        Workload w(cpus, 700 + static_cast<std::uint32_t>(cpus));
        for (StreamFilter filter : kFilters) {
            for (bool data : {false, true}) {
                const ResolvedTraceSoA via_aos =
                    toSoA(w.rep.resolve(filter, data));
                const ResolvedTraceSoA direct =
                    w.rep.resolveSoA(filter, data);
                const std::string what =
                    "cpus " + std::to_string(cpus) + " filter " +
                    std::to_string(static_cast<int>(filter)) +
                    (data ? " +data" : "");
                ASSERT_EQ(direct.size(), via_aos.size()) << what;
                ASSERT_EQ(direct.addr, via_aos.addr) << what;
                ASSERT_EQ(direct.bytes, via_aos.bytes) << what;
                ASSERT_EQ(direct.owner, via_aos.owner) << what;
                ASSERT_EQ(direct.flags, via_aos.flags) << what;
                ASSERT_EQ(direct.cpu_begin, via_aos.cpu_begin) << what;
                EXPECT_EQ(direct.num_cpus, via_aos.num_cpus) << what;
                EXPECT_EQ(direct.instr_events, via_aos.instr_events)
                    << what;
                EXPECT_EQ(direct.instrs, via_aos.instrs) << what;
                ASSERT_EQ(direct.data_refs.size(),
                          via_aos.data_refs.size())
                    << what;
                for (std::size_t i = 0; i < direct.data_refs.size();
                     ++i) {
                    EXPECT_EQ(direct.data_refs[i].addr,
                              via_aos.data_refs[i].addr)
                        << what << " data ref " << i;
                    EXPECT_EQ(direct.data_refs[i].cpu,
                              via_aos.data_refs[i].cpu)
                        << what << " data ref " << i;
                }
                for (int c = -1; c <= cpus; ++c)
                    EXPECT_EQ(direct.cpuRange(c), via_aos.cpuRange(c))
                        << what << " cpu " << c;
            }
        }
    }
}

TEST(ReplayEngine, MatchesSequenceOracleOnBothImages)
{
    Pools pools;
    for (int cpus : {1, 2, 4, 8}) {
        Workload w(cpus, 600 + static_cast<std::uint32_t>(cpus));
        struct Case
        {
            StreamFilter filter;
            trace::ImageId image;
            const core::Layout* layout;
        };
        const Case cases[] = {
            {StreamFilter::AppOnly, trace::ImageId::App,
             &w.app_layout},
            {StreamFilter::KernelOnly, trace::ImageId::Kernel,
             &w.kern_layout},
        };
        for (const Case& c : cases) {
            metrics::SequenceStats oracle = metrics::sequenceLengths(
                w.buf, *c.layout, c.image);
            ResolvedTrace trace = w.rep.resolve(c.filter);
            const ResolvedTraceSoA soa = w.rep.resolveSoA(c.filter);
            for (support::ThreadPool* pool : pools.all) {
                metrics::SequenceStats got = replaySequence(trace, pool);
                expectHistEq(got.lengths, oracle.lengths, "lengths");
                EXPECT_EQ(got.mean, oracle.mean) << "cpus " << cpus;
                EXPECT_EQ(got.mean_block_size, oracle.mean_block_size)
                    << "cpus " << cpus;
                metrics::SequenceStats got_soa =
                    replaySequence(soa, pool);
                expectHistEq(got_soa.lengths, oracle.lengths,
                             "soa lengths");
                EXPECT_EQ(got_soa.mean, oracle.mean) << "cpus " << cpus;
                EXPECT_EQ(got_soa.mean_block_size,
                          oracle.mean_block_size)
                    << "cpus " << cpus;
            }
        }
    }
}

} // namespace
} // namespace spikesim::sim
