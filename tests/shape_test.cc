/**
 * @file
 * Shape-regression tests: lightweight versions of the paper's headline
 * results, run on a reduced workload so they fit in the unit-test
 * budget. These are the guard rails that keep future changes to the
 * generator, engine, or optimizer from silently destroying the
 * reproduction. Bands are deliberately loose (the full-size numbers
 * live in bench_output.txt / EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "metrics/footprint.hh"
#include "metrics/sequence.hh"
#include "sim/replay.hh"
#include "sim/system.hh"
#include "sim/timing.hh"

namespace spikesim::sim {
namespace {

/** One shared reduced workload for every shape check. */
class ShapeFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SystemConfig config;
        config.tpcb.branches = 10;
        config.tpcb.accounts_per_branch = 500;
        config.tpcb.buffer_frames = 400;
        system_ = new System(config);
        system_->setup();
        system_->warmup(20);
        profiles_ = new System::Profiles(system_->collectProfiles(150));
        buf_ = new trace::TraceBuffer();
        system_->run(120, *buf_);
    }

    static void
    TearDownTestSuite()
    {
        delete buf_;
        delete profiles_;
        delete system_;
        buf_ = nullptr;
        profiles_ = nullptr;
        system_ = nullptr;
    }

    static core::Layout
    layout(core::OptCombo combo)
    {
        core::PipelineOptions opts;
        opts.combo = combo;
        return core::buildLayout(system_->appProg(), profiles_->app,
                                 opts);
    }

    static std::uint64_t
    misses(const core::Layout& l, std::uint32_t kb)
    {
        Replayer rep(*buf_, l);
        return rep.icache({kb * 1024, 128, 4}, StreamFilter::AppOnly)
            .misses;
    }

    static System* system_;
    static System::Profiles* profiles_;
    static trace::TraceBuffer* buf_;
};

System* ShapeFixture::system_ = nullptr;
System::Profiles* ShapeFixture::profiles_ = nullptr;
trace::TraceBuffer* ShapeFixture::buf_ = nullptr;

TEST_F(ShapeFixture, FullPipelineCutsMissesDeeply)
{
    // Paper: 55-65% at 64-128KB. Loose band for the reduced workload.
    std::uint64_t base = misses(layout(core::OptCombo::Base), 64);
    std::uint64_t all = misses(layout(core::OptCombo::All), 64);
    double reduction = 1.0 - static_cast<double>(all) /
                                 static_cast<double>(base);
    EXPECT_GT(reduction, 0.35);
    EXPECT_LT(reduction, 0.85);
}

TEST_F(ShapeFixture, ChainingIsTheLargestSingleOptimization)
{
    std::uint64_t base = misses(layout(core::OptCombo::Base), 64);
    std::uint64_t chain = misses(layout(core::OptCombo::Chain), 64);
    std::uint64_t porder = misses(layout(core::OptCombo::POrder), 64);
    EXPECT_LT(chain, porder);
    EXPECT_LT(chain, base);
}

TEST_F(ShapeFixture, OrderingAfterSplittingBeatsEverything)
{
    std::uint64_t all = misses(layout(core::OptCombo::All), 64);
    for (core::OptCombo combo :
         {core::OptCombo::Base, core::OptCombo::POrder,
          core::OptCombo::Chain, core::OptCombo::ChainSplit,
          core::OptCombo::ChainPOrder, core::OptCombo::Cfa})
        EXPECT_LT(all, misses(layout(combo), 64))
            << core::comboName(combo);
}

TEST_F(ShapeFixture, CfaUnderperformsThePipeline)
{
    // The paper's negative result: the hot-trace footprint overwhelms
    // the reserved area.
    std::uint64_t cfa = misses(layout(core::OptCombo::Cfa), 64);
    std::uint64_t all = misses(layout(core::OptCombo::All), 64);
    EXPECT_GT(cfa, all * 12 / 10); // at least 20% worse
}

TEST_F(ShapeFixture, ChainingLengthensSequences)
{
    core::Layout base = layout(core::OptCombo::Base);
    core::Layout opt = layout(core::OptCombo::All);
    auto sb = metrics::sequenceLengths(*buf_, base, trace::ImageId::App);
    auto so = metrics::sequenceLengths(*buf_, opt, trace::ImageId::App);
    EXPECT_GT(so.mean, sb.mean * 1.15);
    // 1-instruction sequences shrink.
    EXPECT_LT(so.lengths.fraction(1), sb.lengths.fraction(1));
}

TEST_F(ShapeFixture, OptimizedPacksFewerLines)
{
    std::uint64_t base_fp = metrics::packedFootprintBytes(
        profiles_->app, layout(core::OptCombo::Base), 128);
    std::uint64_t opt_fp = metrics::packedFootprintBytes(
        profiles_->app, layout(core::OptCombo::All), 128);
    EXPECT_LT(opt_fp, base_fp);
}

TEST_F(ShapeFixture, CombinedStreamGainsLessThanIsolated)
{
    core::Layout kernel = core::baselineLayout(
        system_->kernelProg(), system_->config().kernel_text_base);
    core::Layout base = layout(core::OptCombo::Base);
    core::Layout opt = layout(core::OptCombo::All);
    Replayer base_rep(*buf_, base, &kernel);
    Replayer opt_rep(*buf_, opt, &kernel);
    mem::CacheConfig cfg{64 * 1024, 128, 4};
    double app_red =
        1.0 -
        static_cast<double>(
            opt_rep.icache(cfg, StreamFilter::AppOnly).misses) /
            static_cast<double>(
                base_rep.icache(cfg, StreamFilter::AppOnly).misses);
    double comb_red =
        1.0 -
        static_cast<double>(
            opt_rep.icache(cfg, StreamFilter::Combined).misses) /
            static_cast<double>(
                base_rep.icache(cfg, StreamFilter::Combined).misses);
    EXPECT_LT(comb_red, app_red);
    EXPECT_GT(comb_red, 0.2);
}

TEST_F(ShapeFixture, AppMissesAreMostlySelfInterference)
{
    core::Layout kernel = core::baselineLayout(
        system_->kernelProg(), system_->config().kernel_text_base);
    core::Layout base = layout(core::OptCombo::Base);
    Replayer rep(*buf_, base, &kernel);
    auto r = rep.icache({128 * 1024, 128, 4}, StreamFilter::Combined);
    const auto& m = r.interference;
    EXPECT_GT(m.counts[0][0], m.counts[0][1]); // self > kernel-caused
}

TEST_F(ShapeFixture, TimingImprovesOnEveryPlatform)
{
    core::Layout kernel = core::baselineLayout(
        system_->kernelProg(), system_->config().kernel_text_base);
    core::Layout base = layout(core::OptCombo::Base);
    core::Layout opt = layout(core::OptCombo::All);
    for (const PlatformParams& p :
         {PlatformParams::alpha21264(), PlatformParams::alpha21164(),
          PlatformParams::sim21364()}) {
        Replayer base_rep(*buf_, base, &kernel);
        Replayer opt_rep(*buf_, opt, &kernel);
        auto hb = base_rep.hierarchy(p.hierarchy);
        auto ho = opt_rep.hierarchy(p.hierarchy);
        std::uint64_t cb =
            nonIdleCycles(hb.total, hb.instrs, p, hb.fetch_breaks);
        std::uint64_t co =
            nonIdleCycles(ho.total, ho.instrs, p, ho.fetch_breaks);
        EXPECT_LT(co, cb) << p.name;
    }
}

} // namespace
} // namespace spikesim::sim
