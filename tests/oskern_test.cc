/** @file Tests for the operating-system model. */

#include <gtest/gtest.h>

#include "oskern/kernel.hh"
#include "trace/trace.hh"

namespace spikesim::oskern {
namespace {

TEST(Kernel, ImageIsValidAndHasAllServices)
{
    KernelModel k;
    EXPECT_EQ(k.prog().validate(), "");
    for (const char* svc :
         {"sys_read", "sys_write", "sys_fsync", "sys_ipc", "sys_poll",
          "sched_switch", "intr_timer", "tlb_refill"})
        EXPECT_NE(k.prog().findProc(svc), program::kInvalidId) << svc;
}

TEST(Kernel, ServicesEmitKernelEvents)
{
    KernelModel k;
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    ctx.cpu = 1;
    synth::WalkStats stats = k.enter("sys_read", ctx, buf);
    EXPECT_GT(stats.instrs, 0u);
    EXPECT_GT(buf.size(), 0u);
    for (const auto& e : buf.events()) {
        EXPECT_EQ(e.image, trace::ImageId::Kernel);
        EXPECT_EQ(e.cpu, 1);
    }
}

TEST(Kernel, ServiceCountsAccumulate)
{
    KernelModel k;
    trace::NullSink sink;
    trace::ExecContext ctx;
    k.enter("sys_write", ctx, sink);
    k.enter("sys_write", ctx, sink);
    k.timerInterrupt(ctx, sink);
    k.contextSwitch(ctx, sink);
    const auto& counts = k.serviceCounts();
    EXPECT_EQ(counts.at("sys_write"), 2u);
    EXPECT_EQ(counts.at("intr_timer"), 1u);
    EXPECT_EQ(counts.at("sched_switch"), 1u);
    EXPECT_GT(k.totalInstrs(), 0u);
}

TEST(Kernel, HintsScaleSyscallWork)
{
    KernelModel a, b;
    trace::NullSink sink;
    trace::ExecContext ctx;
    int small = 1, big = 64;
    std::uint64_t small_instrs = 0, big_instrs = 0;
    for (int i = 0; i < 20; ++i) {
        small_instrs += a.enter("sys_read", ctx, sink, {&small, 1}).instrs;
        big_instrs += b.enter("sys_read", ctx, sink, {&big, 1}).instrs;
    }
    // A 64-page read walks its transfer loop many more times.
    EXPECT_GT(big_instrs, small_instrs * 2);
}

TEST(Kernel, UnknownServiceIsFatal)
{
    KernelModel k;
    trace::NullSink sink;
    trace::ExecContext ctx;
    EXPECT_DEATH(k.enter("sys_does_not_exist", ctx, sink),
                 "unknown entry");
}

} // namespace
} // namespace spikesim::oskern
