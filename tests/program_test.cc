/** @file Unit tests for the structural program model. */

#include <gtest/gtest.h>

#include "program/builder.hh"
#include "program/program.hh"

namespace spikesim::program {
namespace {

/** Minimal valid procedure: entry falls into a return block. */
Procedure
tinyProc(const std::string& name)
{
    ProcedureBuilder b(name);
    auto entry = b.addBlock(3, Terminator::FallThrough);
    auto ret = b.addBlock(2, Terminator::Return);
    b.addEdge(entry, ret, EdgeKind::FallThrough);
    return b.build();
}

TEST(Program, AddAndLookupProcedures)
{
    Program p("test");
    ProcId a = p.addProcedure(tinyProc("alpha"));
    ProcId b = p.addProcedure(tinyProc("beta"));
    EXPECT_EQ(p.numProcs(), 2u);
    EXPECT_EQ(p.findProc("alpha"), a);
    EXPECT_EQ(p.findProc("beta"), b);
    EXPECT_EQ(p.findProc("gamma"), kInvalidId);
    EXPECT_EQ(p.proc(a).name, "alpha");
}

TEST(Program, GlobalBlockIdsAreDenseAndInvertible)
{
    Program p("test");
    p.addProcedure(tinyProc("a"));
    p.addProcedure(tinyProc("b"));
    p.addProcedure(tinyProc("c"));
    EXPECT_EQ(p.numBlocks(), 6u);
    std::uint32_t next = 0;
    for (ProcId pid = 0; pid < p.numProcs(); ++pid) {
        for (BlockLocalId b = 0; b < p.proc(pid).blocks.size(); ++b) {
            GlobalBlockId g = p.globalBlockId(pid, b);
            EXPECT_EQ(g, next++);
            auto [rp, rb] = p.locateBlock(g);
            EXPECT_EQ(rp, pid);
            EXPECT_EQ(rb, b);
        }
    }
}

TEST(Program, SizeInstrsSumsBlocks)
{
    Program p("test");
    p.addProcedure(tinyProc("a")); // 3 + 2
    p.addProcedure(tinyProc("b"));
    EXPECT_EQ(p.sizeInstrs(), 10u);
    EXPECT_EQ(p.proc(0).sizeInstrs(), 5u);
}

TEST(Program, ValidAcceptsWellFormed)
{
    Program p("test");
    p.addProcedure(tinyProc("a"));
    EXPECT_EQ(p.validate(), "");
}

TEST(Validate, RejectsCondWithoutBothEdges)
{
    ProcedureBuilder b("bad");
    auto c = b.addBlock(1, Terminator::CondBranch);
    auto r = b.addBlock(1, Terminator::Return);
    b.addEdge(c, r, EdgeKind::CondTaken, 1.0); // missing fall-through
    Program p("test");
    p.addProcedure(b.build());
    EXPECT_NE(p.validate(), "");
}

TEST(Validate, RejectsReturnWithSuccessor)
{
    ProcedureBuilder b("bad");
    auto r = b.addBlock(1, Terminator::Return);
    auto r2 = b.addBlock(1, Terminator::Return);
    b.addEdge(r, r2, EdgeKind::FallThrough);
    Program p("test");
    p.addProcedure(b.build());
    EXPECT_NE(p.validate(), "");
}

TEST(Validate, RejectsFallThroughWithoutEdge)
{
    ProcedureBuilder b("bad");
    b.addBlock(1, Terminator::FallThrough);
    b.addBlock(1, Terminator::Return);
    Program p("test");
    p.addProcedure(b.build());
    EXPECT_NE(p.validate(), "");
}

TEST(Validate, RejectsCallWithoutCallee)
{
    ProcedureBuilder b("bad");
    auto c = b.addBlock(1, Terminator::Call); // no callee
    auto r = b.addBlock(1, Terminator::Return);
    b.addEdge(c, r, EdgeKind::FallThrough);
    Program p("test");
    p.addProcedure(b.build());
    EXPECT_NE(p.validate(), "");
}

TEST(Validate, RejectsBadProbabilitySum)
{
    ProcedureBuilder b("bad");
    auto c = b.addBlock(1, Terminator::CondBranch);
    auto t = b.addBlock(1, Terminator::Return);
    auto f = b.addBlock(1, Terminator::Return);
    b.addEdge(c, t, EdgeKind::CondTaken, 0.5);
    b.addEdge(c, f, EdgeKind::FallThrough, 0.3); // sums to 0.8
    Program p("test");
    p.addProcedure(b.build());
    EXPECT_NE(p.validate(), "");
}

TEST(Validate, RejectsMissingReturn)
{
    ProcedureBuilder b("bad");
    auto a = b.addBlock(1, Terminator::UncondBranch);
    auto c = b.addBlock(1, Terminator::UncondBranch);
    b.addEdge(a, c, EdgeKind::UncondTarget);
    b.addEdge(c, a, EdgeKind::UncondTarget);
    Program p("test");
    p.addProcedure(b.build());
    EXPECT_NE(p.validate(), "");
}

TEST(Validate, RejectsCalleeOutOfRange)
{
    ProcedureBuilder b("bad");
    auto c = b.addBlock(1, Terminator::Call, 42); // proc 42 missing
    auto r = b.addBlock(1, Terminator::Return);
    b.addEdge(c, r, EdgeKind::FallThrough);
    Program p("test");
    p.addProcedure(b.build());
    EXPECT_NE(p.validate(), "");
}

TEST(Validate, RejectsIndirectWithoutTargets)
{
    ProcedureBuilder b("bad");
    b.addBlock(1, Terminator::IndirectJump);
    b.addBlock(1, Terminator::Return);
    Program p("test");
    p.addProcedure(b.build());
    EXPECT_NE(p.validate(), "");
}

TEST(Validate, AcceptsIndirectWithTargets)
{
    ProcedureBuilder b("ok");
    auto s = b.addBlock(1, Terminator::IndirectJump);
    auto a = b.addBlock(1, Terminator::Return);
    auto c = b.addBlock(1, Terminator::Return);
    b.addEdge(s, a, EdgeKind::IndirectTarget, 0.25);
    b.addEdge(s, c, EdgeKind::IndirectTarget, 0.75);
    Program p("test");
    p.addProcedure(b.build());
    EXPECT_EQ(p.validate(), "");
}

TEST(TerminatorNames, AreDistinct)
{
    EXPECT_STREQ(terminatorName(Terminator::Call), "call");
    EXPECT_STREQ(terminatorName(Terminator::Return), "return");
    EXPECT_STRNE(terminatorName(Terminator::CondBranch),
                 terminatorName(Terminator::UncondBranch));
}

TEST(Builder, CondHelperWiresBothEdges)
{
    ProcedureBuilder b("p");
    auto c = b.addBlock(2, Terminator::CondBranch);
    auto t = b.addBlock(1, Terminator::Return);
    auto f = b.addBlock(1, Terminator::Return);
    b.addCond(c, t, f, 0.3);
    Procedure proc = b.build();
    ASSERT_EQ(proc.edges.size(), 2u);
    EXPECT_EQ(proc.edges[0].kind, EdgeKind::CondTaken);
    EXPECT_DOUBLE_EQ(proc.edges[0].prob, 0.3);
    EXPECT_EQ(proc.edges[1].kind, EdgeKind::FallThrough);
    EXPECT_DOUBLE_EQ(proc.edges[1].prob, 0.7);
}

TEST(Procedure, OutEdgesFiltersBySource)
{
    ProcedureBuilder b("p");
    auto c = b.addBlock(2, Terminator::CondBranch);
    auto t = b.addBlock(1, Terminator::Return);
    auto f = b.addBlock(1, Terminator::Return);
    b.addCond(c, t, f, 0.3);
    Procedure proc = b.build();
    EXPECT_EQ(proc.outEdges(c).size(), 2u);
    EXPECT_EQ(proc.outEdges(t).size(), 0u);
}

} // namespace
} // namespace spikesim::program
