/** @file Tests for the heap table. */

#include <gtest/gtest.h>

#include <cstring>

#include "db/btree.hh" // PageAllocator
#include "db/heap.hh"

namespace spikesim::db {
namespace {

struct Row
{
    std::int64_t id;
    std::int64_t value;
};

struct Fixture
{
    SimDisk disk;
    BufferPool pool{disk, 32};
    Wal wal{disk};
    PageAllocator alloc{1};

    HeapTable
    make()
    {
        return HeapTable::create(pool, wal, alloc, sizeof(Row));
    }
};

TEST(Heap, InsertFetchRoundTrip)
{
    Fixture f;
    HeapTable t = f.make();
    Row r{7, 70};
    RowId rid = t.insert(1, &r);
    EXPECT_TRUE(rid.valid());
    Row out{};
    t.fetch(rid, &out);
    EXPECT_EQ(out.id, 7);
    EXPECT_EQ(out.value, 70);
}

TEST(Heap, UpdateInPlace)
{
    Fixture f;
    HeapTable t = f.make();
    Row r{1, 10};
    RowId rid = t.insert(1, &r);
    r.value = 99;
    t.update(1, rid, &r);
    Row out{};
    t.fetch(rid, &out);
    EXPECT_EQ(out.value, 99);
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(Heap, GrowsAcrossPages)
{
    Fixture f;
    HeapTable t = f.make();
    // 16-byte rows: capacity per page is (8192-64)/16 = 508.
    const int n = 1200;
    std::vector<RowId> rids;
    for (int i = 0; i < n; ++i) {
        Row r{i, i * 2};
        rids.push_back(t.insert(1, &r));
    }
    EXPECT_GE(t.numPages(), 3u);
    EXPECT_EQ(t.numRows(), static_cast<std::uint64_t>(n));
    // Spot-check fetches across pages.
    for (int i = 0; i < n; i += 97) {
        Row out{};
        t.fetch(rids[static_cast<std::size_t>(i)], &out);
        EXPECT_EQ(out.id, i);
    }
}

TEST(Heap, ScanVisitsInInsertionOrder)
{
    Fixture f;
    HeapTable t = f.make();
    for (int i = 0; i < 700; ++i) {
        Row r{i, 0};
        t.insert(1, &r);
    }
    std::int64_t expected = 0;
    t.scan([&](RowId, const void* p) {
        Row r{};
        std::memcpy(&r, p, sizeof(r));
        EXPECT_EQ(r.id, expected++);
    });
    EXPECT_EQ(expected, 700);
}

TEST(Heap, OpenRediscoversChain)
{
    Fixture f;
    PageId first;
    {
        HeapTable t = f.make();
        first = t.firstPage();
        for (int i = 0; i < 1200; ++i) {
            Row r{i, 0};
            t.insert(1, &r);
        }
    }
    HeapTable reopened =
        HeapTable::open(f.pool, f.wal, f.alloc, first);
    EXPECT_EQ(reopened.numRows(), 1200u);
    EXPECT_EQ(reopened.rowBytes(), sizeof(Row));
    // Appends continue on the rediscovered tail.
    Row r{9999, 0};
    RowId rid = reopened.insert(1, &r);
    Row out{};
    reopened.fetch(rid, &out);
    EXPECT_EQ(out.id, 9999);
}

} // namespace
} // namespace spikesim::db
