/**
 * @file
 * Tests for the single-pass multi-configuration sweep engine: the LRU
 * stack-distance simulator against the set-associative reference, the
 * sweep API against per-config replay (randomized differential), and
 * the parallel executor against the serial path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/layout.hh"
#include "mem/cache.hh"
#include "mem/lrustack.hh"
#include "program/builder.hh"
#include "sim/sweep.hh"
#include "support/rng.hh"
#include "support/threadpool.hh"

namespace spikesim::sim {
namespace {

using program::EdgeKind;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

TEST(LruStack, ColdMissesThenInclusionHits)
{
    mem::LruStackSim sim(4, 4);
    // Four distinct lines mapping to the same set.
    for (std::uint64_t i = 0; i < 4; ++i)
        sim.access(i * 4);
    EXPECT_EQ(sim.accesses(), 4u);
    EXPECT_EQ(sim.missesAt(1), 4u); // all cold
    EXPECT_EQ(sim.missesAt(4), 4u);
    // Re-touch in reverse: line 12 is MRU (distance 0), line 0 is at
    // distance 3 -- a hit only with assoc 4.
    sim.access(12);
    sim.access(0);
    EXPECT_EQ(sim.distanceCount(0), 1u);
    EXPECT_EQ(sim.distanceCount(3), 1u);
    EXPECT_EQ(sim.missesAt(1), 5u); // line 0 at distance 3 misses DM
    EXPECT_EQ(sim.missesAt(4), 4u); // ... but hits 4-way
    // Inclusion: hits can only grow with associativity.
    for (std::uint32_t a = 2; a <= 4; ++a)
        EXPECT_GE(sim.hitsUpTo(a), sim.hitsUpTo(a - 1));
}

TEST(LruStack, MatchesSetAssocCacheOnRandomStream)
{
    // One truncated stack answers every associativity; each answer must
    // equal a full SetAssocCache simulation of that geometry.
    const std::uint32_t sets = 64;
    const std::uint32_t line = 64;
    const std::vector<std::uint32_t> assocs{1, 2, 4, 8};
    mem::LruStackSim sim(sets, 8);
    std::vector<mem::SetAssocCache> caches;
    for (std::uint32_t a : assocs)
        caches.emplace_back(mem::CacheConfig{sets * line * a, line, a});

    support::Pcg32 rng(123);
    std::uint64_t addr = 0;
    for (int i = 0; i < 20000; ++i) {
        // Mostly-sequential walk with occasional far jumps, like an
        // instruction stream.
        if (rng.nextBool(0.1))
            addr = static_cast<std::uint64_t>(rng.nextBounded(1 << 20));
        else
            addr += rng.nextBounded(2 * line);
        std::uint64_t ln = addr / line;
        sim.access(ln);
        for (auto& c : caches)
            c.access(ln * line, mem::Owner::App);
    }
    for (std::size_t i = 0; i < assocs.size(); ++i) {
        EXPECT_EQ(sim.missesAt(assocs[i]), caches[i].misses())
            << "assoc " << assocs[i];
        EXPECT_EQ(sim.hitsUpTo(assocs[i]), caches[i].hits())
            << "assoc " << assocs[i];
    }
}

TEST(SweepSpec, CheckRejectsBadGrids)
{
    SweepSpec empty;
    EXPECT_NE(empty.check(), "");

    SweepSpec bad_line;
    bad_line.size_bytes = {64 * 1024};
    bad_line.line_bytes = {48}; // not a power of two
    EXPECT_NE(bad_line.check(), "");

    SweepSpec too_small;
    too_small.size_bytes = {1024};
    too_small.line_bytes = {256};
    too_small.assocs = {8}; // 1KB < 256B * 8
    EXPECT_NE(too_small.check(), "");

    SweepSpec ok;
    ok.size_bytes = {8 * 1024, 64 * 1024};
    ok.line_bytes = {32, 128};
    ok.assocs = {1, 4};
    EXPECT_EQ(ok.check(), "");
    EXPECT_EQ(ok.numConfigs(), 8u);
}

/** A program of `blocks` random-sized blocks (paired into procs). */
Program
randomProgram(const char* name, int blocks, std::uint32_t seed)
{
    support::Pcg32 rng(seed);
    Program p(name);
    for (int i = 0; i < blocks; i += 2) {
        ProcedureBuilder b("p" + std::to_string(i));
        auto a = b.addBlock(1 + rng.nextBounded(32),
                            Terminator::FallThrough);
        auto r = b.addBlock(1 + rng.nextBounded(32), Terminator::Return);
        b.addEdge(a, r, EdgeKind::FallThrough);
        p.addProcedure(b.build());
    }
    EXPECT_EQ(p.validate(), "");
    return p;
}

/**
 * A trace over `blocks` block ids with loop-like locality: mostly
 * nearby re-executions (cache hits at small stack distances), with
 * occasional far jumps, spread across CPUs and both images, plus some
 * data refs the instruction sweep must ignore.
 */
trace::TraceBuffer
randomTrace(int blocks, int events, int num_cpus, std::uint32_t seed)
{
    support::Pcg32 rng(seed);
    trace::TraceBuffer buf;
    std::vector<trace::ExecContext> ctx(num_cpus);
    std::vector<std::uint32_t> cur(num_cpus, 0);
    for (int c = 0; c < num_cpus; ++c)
        ctx[c].cpu = c;
    for (int i = 0; i < events; ++i) {
        int c = static_cast<int>(
            rng.nextBounded(static_cast<std::uint32_t>(num_cpus)));
        if (rng.nextBool(0.15))
            cur[c] = rng.nextBounded(static_cast<std::uint32_t>(blocks));
        else
            cur[c] = static_cast<std::uint32_t>(
                (cur[c] + 1) % static_cast<std::uint32_t>(blocks));
        trace::ImageId image = rng.nextBool(0.3)
                                   ? trace::ImageId::Kernel
                                   : trace::ImageId::App;
        buf.onBlock(ctx[c], image, cur[c]);
        if (rng.nextBool(0.05))
            buf.onData(ctx[c], 0x80000000ULL + rng.nextBounded(1 << 16));
    }
    return buf;
}

/**
 * The randomized differential test from the issue: the sweep engine
 * must reproduce per-config replay miss counts exactly over a grid of
 * sizes, line sizes and associativities, for every stream filter, on a
 * multi-CPU trace with app + kernel images and data noise.
 */
TEST(Sweep, MatchesPerConfigReplayRandomized)
{
    const int kBlocks = 120;
    Program app = randomProgram("app", kBlocks, 11);
    Program kern = randomProgram("kern", kBlocks, 22);
    core::Layout app_layout = core::baselineLayout(app, 0);
    core::Layout kern_layout = core::baselineLayout(kern, 0x400000);
    trace::TraceBuffer buf = randomTrace(kBlocks, 20000, 3, 33);
    Replayer rep(buf, app_layout, &kern_layout);
    ASSERT_EQ(rep.numCpus(), 3);

    SweepSpec spec;
    for (std::uint32_t kb : {8, 32, 128, 512})
        spec.size_bytes.push_back(kb * 1024);
    spec.line_bytes = {16, 64, 256};
    spec.assocs = {1, 2, 4, 8};
    ASSERT_EQ(spec.check(), "");

    for (StreamFilter filter : {StreamFilter::AppOnly,
                                StreamFilter::KernelOnly,
                                StreamFilter::Combined}) {
        SweepResult sweep = rep.icacheSweep(spec, filter);
        for (std::uint32_t size : spec.size_bytes) {
            for (std::uint32_t line : spec.line_bytes) {
                for (std::uint32_t assoc : spec.assocs) {
                    auto r = rep.icache({size, line, assoc}, filter);
                    EXPECT_EQ(sweep.misses(size, line, assoc), r.misses)
                        << mem::CacheConfig{size, line, assoc}.label()
                        << " filter "
                        << static_cast<int>(filter);
                    EXPECT_EQ(sweep.accesses(line), r.accesses);
                }
            }
        }
    }
}

TEST(Sweep, SweepLineSizeFillsOneSliceAtATime)
{
    // sweepLineSize (the parallel executor's unit of work) and
    // sweepAllLines (the fused serial path) must agree.
    Program app = randomProgram("app", 40, 5);
    core::Layout layout = core::baselineLayout(app, 0);
    trace::TraceBuffer buf = randomTrace(40, 5000, 2, 6);
    Replayer rep(buf, layout);

    SweepSpec spec;
    spec.size_bytes = {16 * 1024, 64 * 1024};
    spec.line_bytes = {32, 128};
    spec.assocs = {1, 2};
    ResolvedTrace resolved = rep.resolve(StreamFilter::AppOnly);
    SweepResult per_line(spec);
    for (std::size_t li = 0; li < spec.line_bytes.size(); ++li)
        sweepLineSize(resolved, spec, li, per_line);
    SweepResult fused(spec);
    sweepAllLines(resolved, spec, fused);
    for (std::uint32_t size : spec.size_bytes)
        for (std::uint32_t line : spec.line_bytes)
            for (std::uint32_t assoc : spec.assocs)
                EXPECT_EQ(per_line.misses(size, line, assoc),
                          fused.misses(size, line, assoc));
}

TEST(Sweep, ParallelJobsMatchSerial)
{
    Program app = randomProgram("app", 80, 7);
    Program kern = randomProgram("kern", 80, 8);
    core::Layout app_a = core::baselineLayout(app, 0);
    core::Layout app_b = core::baselineLayout(app, 0x1000);
    core::Layout kern_layout = core::baselineLayout(kern, 0x400000);
    trace::TraceBuffer buf = randomTrace(80, 8000, 2, 9);

    SweepSpec spec;
    spec.size_bytes = {8 * 1024, 32 * 1024, 128 * 1024};
    spec.line_bytes = {16, 64, 128};
    spec.assocs = {1, 4};
    std::vector<SweepJob> jobs{
        {&app_a, &kern_layout, StreamFilter::AppOnly, spec, "a"},
        {&app_b, &kern_layout, StreamFilter::Combined, spec, "b"},
        {&app_a, &kern_layout, StreamFilter::KernelOnly, spec, "k"},
    };
    std::vector<SweepResult> serial = runSweepJobs(buf, jobs, nullptr);
    support::ThreadPool pool(3);
    std::vector<SweepResult> parallel = runSweepJobs(buf, jobs, &pool);
    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        for (std::uint32_t size : spec.size_bytes) {
            for (std::uint32_t line : spec.line_bytes) {
                for (std::uint32_t assoc : spec.assocs) {
                    EXPECT_EQ(serial[j].misses(size, line, assoc),
                              parallel[j].misses(size, line, assoc))
                        << jobs[j].label;
                    EXPECT_EQ(serial[j].accesses(line),
                              parallel[j].accesses(line));
                }
            }
        }
    }
    // And both must equal the direct Replayer sweep for that job.
    Replayer rep(buf, app_b, &kern_layout);
    SweepResult direct = rep.icacheSweep(spec, StreamFilter::Combined);
    for (std::uint32_t size : spec.size_bytes)
        for (std::uint32_t line : spec.line_bytes)
            for (std::uint32_t assoc : spec.assocs)
                EXPECT_EQ(serial[1].misses(size, line, assoc),
                          direct.misses(size, line, assoc));
}

using SweepDeathTest = ::testing::Test;

TEST(SweepDeathTest, BadGeometryAborts)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(mem::LruStackSim(48, 4), "power of two");
    EXPECT_DEATH(mem::LruStackSim(64, 0), "");
    Program app = randomProgram("app", 4, 1);
    core::Layout layout = core::baselineLayout(app, 0);
    trace::TraceBuffer buf = randomTrace(4, 10, 1, 2);
    Replayer rep(buf, layout);
    SweepSpec bad;
    bad.size_bytes = {1000}; // not a multiple of line*assoc
    bad.line_bytes = {64};
    bad.assocs = {1};
    EXPECT_DEATH(rep.icacheSweep(bad, StreamFilter::AppOnly),
                 "bad sweep spec");
}

} // namespace
} // namespace spikesim::sim
