/** @file Tests for the write-ahead log. */

#include <gtest/gtest.h>

#include <cstring>

#include "db/wal.hh"

namespace spikesim::db {
namespace {

TEST(Wal, LsnsIncrease)
{
    SimDisk disk;
    Wal wal(disk);
    Lsn a = wal.logBegin(1);
    Lsn b = wal.logCommitRecord(1);
    EXPECT_LT(a, b);
    EXPECT_EQ(wal.currentLsn(), b);
}

TEST(Wal, RecordsRoundTripThroughDisk)
{
    SimDisk disk;
    Wal wal(disk);
    wal.logBegin(3);
    std::int64_t payload = 0x1234;
    wal.logAppend(3, 9, &payload, sizeof(payload));
    wal.logSetExtra(3, 9, 777);
    wal.logCommitRecord(3);
    wal.flush();

    auto records = Wal::readAll(disk);
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0].hdr.kind, WalKind::Begin);
    EXPECT_EQ(records[0].hdr.txn, 3u);
    EXPECT_EQ(records[1].hdr.kind, WalKind::Append);
    EXPECT_EQ(records[1].hdr.page, 9u);
    ASSERT_EQ(records[1].payload.size(), sizeof(payload));
    std::int64_t read = 0;
    std::memcpy(&read, records[1].payload.data(), sizeof(read));
    EXPECT_EQ(read, 0x1234);
    EXPECT_EQ(records[2].hdr.kind, WalKind::SetExtra);
    EXPECT_EQ(records[2].hdr.aux64, 777u);
    EXPECT_EQ(records[3].hdr.kind, WalKind::Commit);
}

TEST(Wal, UpdateCarriesAfterThenBefore)
{
    SimDisk disk;
    Wal wal(disk);
    std::int32_t after = 2, before = 1;
    wal.logUpdate(5, 1, 0, &after, &before, sizeof(after));
    wal.flush();
    auto records = Wal::readAll(disk);
    ASSERT_EQ(records.size(), 1u);
    ASSERT_EQ(records[0].payload.size(), 8u);
    std::int32_t a = 0, b = 0;
    std::memcpy(&a, records[0].payload.data(), 4);
    std::memcpy(&b, records[0].payload.data() + 4, 4);
    EXPECT_EQ(a, 2);
    EXPECT_EQ(b, 1);
}

TEST(Wal, GroupCommitBatches)
{
    SimDisk disk;
    Wal::Config config;
    config.group_commit_batch = 4;
    Wal wal(disk, config);
    int leaders = 0;
    for (TxnId t = 1; t <= 12; ++t)
        leaders += wal.commit(t) ? 1 : 0;
    EXPECT_EQ(leaders, 3);
    EXPECT_EQ(wal.flushes(), 3u);
    EXPECT_EQ(wal.commits(), 12u);
}

TEST(Wal, LargeBufferForcesFlush)
{
    SimDisk disk;
    Wal::Config config;
    config.group_commit_batch = 1000;
    config.flush_threshold_bytes = 256;
    Wal wal(disk, config);
    std::uint8_t blob[128] = {0};
    wal.logAppend(1, 1, blob, sizeof(blob));
    wal.logAppend(1, 1, blob, sizeof(blob));
    EXPECT_TRUE(wal.commit(1)); // buffer beyond threshold -> leader
}

TEST(Wal, FlushedLsnTracksDurability)
{
    SimDisk disk;
    Wal wal(disk);
    wal.logBegin(1);
    EXPECT_EQ(wal.flushedLsn(), 0u);
    wal.flush();
    EXPECT_EQ(wal.flushedLsn(), wal.currentLsn());
}

TEST(Wal, DiscardBufferLosesUnflushed)
{
    SimDisk disk;
    Wal wal(disk);
    wal.logBegin(1);
    wal.flush();
    wal.logBegin(2); // not flushed
    wal.discardBuffer();
    auto records = Wal::readAll(disk);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].hdr.txn, 1u);
}

TEST(Wal, UndoChainsAccumulateAndClear)
{
    SimDisk disk;
    Wal wal(disk);
    std::int32_t after = 2, before = 1;
    wal.logUpdate(7, 1, 0, &after, &before, sizeof(after));
    wal.logUpdate(7, 2, 3, &after, &before, sizeof(after));
    EXPECT_EQ(wal.undoChain(7).size(), 2u);
    EXPECT_EQ(wal.undoChain(7)[1].page, 2u);
    EXPECT_EQ(wal.undoChain(7)[1].slot, 3u);
    EXPECT_EQ(wal.undoChain(8).size(), 0u);
    wal.commit(7);
    EXPECT_EQ(wal.undoChain(7).size(), 0u);
}

TEST(Wal, StructuralRecordsHaveNoUndo)
{
    SimDisk disk;
    Wal wal(disk);
    std::int32_t after = 2, before = 1;
    wal.logUpdate(kStructuralTxn, 1, 0, &after, &before, sizeof(after));
    EXPECT_EQ(wal.undoChain(kStructuralTxn).size(), 0u);
}

} // namespace
} // namespace spikesim::db
