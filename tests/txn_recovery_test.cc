/** @file Tests for transactions (commit/abort) and crash recovery. */

#include <gtest/gtest.h>

#include <cstring>

#include "db/btree.hh"
#include "db/heap.hh"
#include "db/recovery.hh"
#include "db/txn.hh"

namespace spikesim::db {
namespace {

struct Row
{
    std::int64_t id;
    std::int64_t value;
};

struct Fixture
{
    SimDisk disk;
    BufferPool pool{disk, 32};
    Wal wal{disk};
    LockManager locks;
    TransactionManager txns{wal, locks, pool};
    PageAllocator alloc{1};
};

TEST(Txn, CommitMakesStateDurable)
{
    Fixture f;
    HeapTable t = HeapTable::create(f.pool, f.wal, f.alloc, sizeof(Row));
    TxnId txn = f.txns.begin();
    Row r{1, 42};
    t.insert(txn, &r);
    f.txns.commit(txn);
    EXPECT_EQ(f.txns.state(txn), TxnState::Committed);
    EXPECT_EQ(f.txns.numCommitted(), 1u);
}

TEST(Txn, AbortRollsBackUpdates)
{
    Fixture f;
    HeapTable t = HeapTable::create(f.pool, f.wal, f.alloc, sizeof(Row));
    TxnId setup = f.txns.begin();
    Row r{1, 10};
    RowId rid = t.insert(setup, &r);
    f.txns.commit(setup);

    TxnId txn = f.txns.begin();
    r.value = 99;
    t.update(txn, rid, &r);
    r.value = 100;
    t.update(txn, rid, &r);
    f.txns.abort(txn);
    EXPECT_EQ(f.txns.state(txn), TxnState::Aborted);

    Row out{};
    t.fetch(rid, &out);
    EXPECT_EQ(out.value, 10); // both updates rolled back
}

TEST(Txn, AbortReleasesLocks)
{
    Fixture f;
    TxnId a = f.txns.begin();
    f.locks.acquire(a, {1, 5}, LockMode::Exclusive);
    f.txns.abort(a);
    TxnId b = f.txns.begin();
    EXPECT_EQ(f.locks.acquire(b, {1, 5}, LockMode::Exclusive),
              LockResult::Granted);
}

TEST(Recovery, CommittedTransactionSurvivesCrash)
{
    SimDisk disk;
    PageId first;
    RowId rid;
    {
        BufferPool pool(disk, 32);
        Wal wal(disk);
        PageAllocator alloc(1);
        HeapTable t = HeapTable::create(pool, wal, alloc, sizeof(Row));
        first = t.firstPage();
        Row r{1, 55};
        rid = t.insert(7, &r);
        wal.logCommitRecord(7);
        wal.flush();
        // Crash: pool discarded, pages never written to disk.
    }
    BufferPool pool(disk, 32);
    RecoveryResult res = recover(disk, pool);
    EXPECT_EQ(res.txns_committed, 1u);
    EXPECT_GT(res.records_redone, 0u);
    Wal wal2(disk);
    PageAllocator alloc2(res.max_page + 1);
    HeapTable t = HeapTable::open(pool, wal2, alloc2, first);
    Row out{};
    t.fetch(rid, &out);
    EXPECT_EQ(out.value, 55);
}

TEST(Recovery, UnflushedCommitIsLost)
{
    SimDisk disk;
    {
        BufferPool pool(disk, 32);
        Wal wal(disk);
        PageAllocator alloc(1);
        HeapTable t = HeapTable::create(pool, wal, alloc, sizeof(Row));
        wal.flush(); // table creation durable
        Row r{1, 55};
        t.insert(7, &r);
        wal.logCommitRecord(7);
        // No flush: commit record never reaches disk.
    }
    BufferPool pool(disk, 32);
    RecoveryResult res = recover(disk, pool);
    EXPECT_EQ(res.txns_committed, 0u);
}

TEST(Recovery, LoserUpdateOnFlushedPageIsUndone)
{
    SimDisk disk;
    PageId first;
    RowId rid;
    {
        BufferPool pool(disk, 32);
        Wal wal(disk);
        PageAllocator alloc(1);
        HeapTable t = HeapTable::create(pool, wal, alloc, sizeof(Row));
        first = t.firstPage();
        Row r{1, 10};
        rid = t.insert(5, &r);
        wal.logCommitRecord(5);
        // Loser txn 6 updates and its dirty page reaches disk, but the
        // commit record does not.
        r.value = 666;
        t.update(6, rid, &r);
        wal.flush(); // WAL rule: records precede the page write
        pool.flushAll();
        // Crash before txn 6 commits.
    }
    BufferPool pool(disk, 32);
    RecoveryResult res = recover(disk, pool);
    EXPECT_EQ(res.txns_committed, 1u);
    EXPECT_EQ(res.txns_lost, 1u);
    EXPECT_EQ(res.records_undone, 1u);
    Wal wal2(disk);
    PageAllocator alloc2(res.max_page + 1);
    HeapTable t = HeapTable::open(pool, wal2, alloc2, first);
    Row out{};
    t.fetch(rid, &out);
    EXPECT_EQ(out.value, 10);
}

TEST(Recovery, LoserInsertOnFlushedPageIsRemoved)
{
    SimDisk disk;
    PageId first;
    {
        BufferPool pool(disk, 32);
        Wal wal(disk);
        PageAllocator alloc(1);
        HeapTable t = HeapTable::create(pool, wal, alloc, sizeof(Row));
        first = t.firstPage();
        Row r{1, 10};
        t.insert(5, &r);
        wal.logCommitRecord(5);
        Row loser{2, 20};
        t.insert(6, &loser); // never commits
        wal.flush();
        pool.flushAll();
    }
    BufferPool pool(disk, 32);
    RecoveryResult res = recover(disk, pool);
    EXPECT_EQ(res.records_undone, 1u);
    Wal wal2(disk);
    PageAllocator alloc2(res.max_page + 1);
    HeapTable t = HeapTable::open(pool, wal2, alloc2, first);
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(Recovery, RedoIsIdempotent)
{
    SimDisk disk;
    PageId first;
    RowId rid;
    {
        BufferPool pool(disk, 32);
        Wal wal(disk);
        PageAllocator alloc(1);
        HeapTable t = HeapTable::create(pool, wal, alloc, sizeof(Row));
        first = t.firstPage();
        Row r{1, 30};
        rid = t.insert(4, &r);
        wal.logCommitRecord(4);
        wal.flush();
        pool.flushAll(); // pages already reflect the log
    }
    BufferPool pool(disk, 32);
    RecoveryResult res = recover(disk, pool);
    // Page LSN guards: nothing needs re-applying.
    EXPECT_EQ(res.records_redone, 0u);
    Wal wal2(disk);
    PageAllocator alloc2(res.max_page + 1);
    HeapTable t = HeapTable::open(pool, wal2, alloc2, first);
    Row out{};
    t.fetch(rid, &out);
    EXPECT_EQ(out.value, 30);
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(Recovery, BtreeSplitsAreStructuralAndSurvive)
{
    SimDisk disk;
    PageId anchor;
    {
        BufferPool pool(disk, 64);
        Wal wal(disk);
        PageAllocator alloc(1);
        anchor = alloc.alloc();
        BTree t = BTree::create(pool, wal, alloc, anchor);
        for (std::int64_t k = 0; k < 2000; ++k)
            t.insert(9, k, {static_cast<PageId>(k), 0});
        wal.logCommitRecord(9);
        wal.flush();
        // Crash without flushing pages.
    }
    BufferPool pool(disk, 64);
    RecoveryResult res = recover(disk, pool);
    Wal wal2(disk);
    PageAllocator alloc2(res.max_page + 1);
    BTree t = BTree::open(pool, wal2, alloc2, anchor);
    EXPECT_EQ(t.check(), "");
    EXPECT_EQ(t.numEntries(), 2000u);
    EXPECT_GE(t.height(), 2);
}

} // namespace
} // namespace spikesim::db
