/** @file Tests for the word-instrumented instruction cache. */

#include <gtest/gtest.h>

#include "mem/instrumented.hh"

namespace spikesim::mem {
namespace {

TEST(Instrumented, CountsUniqueWordsOnEviction)
{
    // 128B cache, 64B lines, direct mapped -> 2 sets.
    InstrumentedICache c({128, 64, 1});
    // Touch 3 distinct words of line 0 (set 0).
    c.fetchWord(0x0);
    c.fetchWord(0x4);
    c.fetchWord(0x8);
    c.fetchWord(0x4); // repeat: still 3 unique
    // Evict line 0 by touching line at 128 (same set).
    c.fetchWord(128);
    EXPECT_EQ(c.wordsUsed().totalSamples(), 1u);
    EXPECT_EQ(c.wordsUsed().bucket(3), 1u);
}

TEST(Instrumented, WordReuseHistogram)
{
    InstrumentedICache c({128, 64, 1});
    c.fetchWord(0x0);
    c.fetchWord(0x0);
    c.fetchWord(0x0); // word 0 used 3 times
    c.fetchWord(0x4); // word 1 used once
    c.fetchWord(128); // evict
    // 16 words per 64B line: 14 unused, one used once, one used 3x.
    EXPECT_EQ(c.wordReuse().bucket(0), 14u);
    EXPECT_EQ(c.wordReuse().bucket(1), 1u);
    EXPECT_EQ(c.wordReuse().bucket(3), 1u);
    EXPECT_NEAR(c.unusedWordFraction(), 14.0 / 16.0, 1e-9);
}

TEST(Instrumented, LifetimeIsMeasuredInAccesses)
{
    InstrumentedICache c({128, 64, 1});
    c.fetchWord(0); // access 1: fill
    c.fetchWord(4); // access 2
    c.fetchWord(8); // access 3
    c.fetchWord(128); // access 4: evicts; lifetime = 4 - 1 = 3
    EXPECT_EQ(c.lifetimes().totalSamples(), 1u);
    EXPECT_EQ(c.lifetimes().bucket(1), 1u); // log2(3) bucket 1
}

TEST(Instrumented, FlushRetiresResidentLines)
{
    InstrumentedICache c({128, 64, 1});
    c.fetchWord(0);
    c.fetchWord(64);
    EXPECT_EQ(c.wordsUsed().totalSamples(), 0u);
    c.flush();
    EXPECT_EQ(c.wordsUsed().totalSamples(), 2u);
    EXPECT_EQ(c.wordsUsed().bucket(1), 2u);
}

TEST(Instrumented, HitMissAccounting)
{
    InstrumentedICache c({256, 64, 2});
    c.fetchWord(0);
    c.fetchWord(4);
    c.fetchWord(0);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Instrumented, FullLineUseShowsInTopBucket)
{
    InstrumentedICache c({128, 64, 1});
    for (std::uint64_t w = 0; w < 16; ++w)
        c.fetchWord(w * 4);
    c.fetchWord(128); // evict the fully used line
    EXPECT_EQ(c.wordsUsed().bucket(16), 1u);
    EXPECT_DOUBLE_EQ(c.unusedWordFraction(), 0.0);
}

TEST(Instrumented, WordsPerLineFollowsConfig)
{
    InstrumentedICache a({1024, 128, 1});
    EXPECT_EQ(a.wordsPerLine(), 32u);
    InstrumentedICache b({1024, 256, 1});
    EXPECT_EQ(b.wordsPerLine(), 64u);
}

TEST(Instrumented, LruReplacementWithinSet)
{
    InstrumentedICache c({256, 64, 2}); // 2 sets x 2 ways
    c.fetchWord(0);    // set 0 way A
    c.fetchWord(256);  // set 0 way B
    c.fetchWord(0);    // touch A
    c.fetchWord(512);  // set 0: evicts B (LRU)
    c.fetchWord(0);
    EXPECT_EQ(c.misses(), 3u); // 0, 256, 512; final 0 hits
}

} // namespace
} // namespace spikesim::mem
