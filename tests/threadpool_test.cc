/** @file Tests for the worker-thread pool behind the sweep executor. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/registry.hh"
#include "support/threadpool.hh"

namespace spikesim::support {
namespace {

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIsABarrier)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            done.fetch_add(1);
        });
    pool.wait();
    // Every task must have finished -- not merely been dequeued --
    // before wait() returns.
    EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int wave = 0; wave < 5; ++wave) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(ran.load(), (wave + 1) * 20);
    }
}

TEST(ThreadPool, WaitWithNothingQueuedReturns)
{
    ThreadPool pool(2);
    pool.wait(); // must not deadlock
    SUCCEED();
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        // No wait(): the destructor must finish the queue first.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
    ThreadPool pool; // num_threads = 0 picks the default
    EXPECT_EQ(pool.numThreads(), ThreadPool::defaultThreads());
}

TEST(ThreadPool, StatsAndRegistryAreWidthInvariant)
{
    // The execution counts must depend only on the submitted work,
    // never on the worker count — both in the per-pool Stats and in
    // the process-wide obs registry (`support.pool.*`).
    constexpr std::uint64_t kTasks = 64;
    for (int width : {1, 2, 4, 8}) {
        obs::Counter& submitted =
            obs::counter("support.pool.submitted");
        obs::Counter& executed = obs::counter("support.pool.executed");
        const std::uint64_t sub0 = submitted.value();
        const std::uint64_t exec0 = executed.value();

        std::atomic<std::uint64_t> ran{0};
        ThreadPool pool(width);
        for (std::uint64_t i = 0; i < kTasks; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        pool.wait();

        const ThreadPool::Stats s = pool.stats();
        EXPECT_EQ(ran.load(), kTasks) << "width " << width;
        EXPECT_EQ(s.submitted, kTasks) << "width " << width;
        EXPECT_EQ(s.executed, kTasks) << "width " << width;
        EXPECT_GE(s.max_queue_depth, 1u);
        EXPECT_LE(s.max_queue_depth, kTasks);
        EXPECT_EQ(submitted.value() - sub0, kTasks)
            << "width " << width;
        EXPECT_EQ(executed.value() - exec0, kTasks)
            << "width " << width;
    }
}

TEST(ThreadPool, IdleTimeAccumulatesWhileParked)
{
    ThreadPool pool(2);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pool.submit([] {});
    pool.wait();
    // Both workers parked ~20ms before the first task arrived.
    EXPECT_GT(pool.stats().idle_ns, 0u);
}

TEST(ThreadPool, TasksRunConcurrentlyAcrossWorkers)
{
    // Two tasks that rendezvous: each waits for the other's arrival, so
    // the pair only completes if two workers run them in parallel.
    ThreadPool pool(2);
    std::atomic<int> arrived{0};
    for (int i = 0; i < 2; ++i)
        pool.submit([&arrived] {
            arrived.fetch_add(1);
            while (arrived.load() < 2)
                std::this_thread::yield();
        });
    pool.wait();
    EXPECT_EQ(arrived.load(), 2);
}

} // namespace
} // namespace spikesim::support
