/** @file Tests for the stream-buffered instruction cache. */

#include <gtest/gtest.h>

#include "mem/streambuf.hh"

namespace spikesim::mem {
namespace {

TEST(StreamBuffer, SequentialMissesAreCovered)
{
    // Tiny 128B cache so a long sequential run keeps missing; the
    // stream buffer should cover every miss after the first.
    StreamBufferICache c({128, 64, 1}, 4);
    for (std::uint64_t line = 0; line < 32; ++line)
        c.fetchLine(line * 64);
    EXPECT_EQ(c.stats().accesses(), 32u);
    EXPECT_EQ(c.stats().demandMisses(), 1u);
    EXPECT_EQ(c.stats().streamHits(), 31u);
    EXPECT_NEAR(c.stats().coverage(), 31.0 / 32.0, 1e-9);
}

TEST(StreamBuffer, CacheHitsBypassBuffers)
{
    StreamBufferICache c({1024, 64, 1}, 4);
    c.fetchLine(0);
    c.fetchLine(0);
    c.fetchLine(0);
    EXPECT_EQ(c.stats().l1Misses(), 1u);
    EXPECT_EQ(c.stats().accesses(), 3u);
}

TEST(StreamBuffer, RandomJumpsAreDemandMisses)
{
    StreamBufferICache c({128, 64, 1}, 4);
    // Strided pattern (not +1 line): buffers never match.
    for (std::uint64_t i = 0; i < 16; ++i)
        c.fetchLine(i * 64 * 7);
    EXPECT_EQ(c.stats().streamHits(), 0u);
    EXPECT_EQ(c.stats().demandMisses(), 16u);
}

TEST(StreamBuffer, MultipleStreamsTrackedIndependently)
{
    StreamBufferICache c({128, 64, 1}, 2);
    // Interleave two sequential streams far apart.
    for (std::uint64_t i = 0; i < 8; ++i) {
        c.fetchLine(i * 64);             // stream A
        c.fetchLine(0x100000 + i * 64);  // stream B
    }
    EXPECT_EQ(c.stats().demandMisses(), 2u); // one per stream head
    EXPECT_EQ(c.stats().streamHits(), 14u);
}

TEST(StreamBuffer, LruBufferReallocation)
{
    StreamBufferICache c({128, 64, 1}, 1);
    c.fetchLine(0);          // allocates the only buffer (next = 1)
    c.fetchLine(0x100000);   // steals it
    c.fetchLine(64);         // stream A's successor: buffer was stolen
    EXPECT_EQ(c.stats().streamHits(), 0u);
    EXPECT_EQ(c.stats().demandMisses(), 3u);
}

} // namespace
} // namespace spikesim::mem
