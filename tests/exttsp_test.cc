/** @file Tests for the ExtTSP layout cost model (opt/exttsp.hh). */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/chain.hh"
#include "opt/exttsp.hh"
#include "program/builder.hh"
#include "program/program.hh"

namespace spikesim::opt {
namespace {

using program::BlockLocalId;
using program::EdgeKind;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

TEST(ExtTspEdge, FallThroughScoresFullWeight)
{
    ExtTspParams p;
    p.coline_weight = 0.0;
    EXPECT_DOUBLE_EQ(extTspEdgeScore(100, 100, 7, p),
                     7.0 * p.fallthrough_weight);
}

TEST(ExtTspEdge, ForwardJumpDecaysLinearlyToZero)
{
    ExtTspParams p;
    p.coline_weight = 0.0;
    // Halfway through the forward window: half the peak weight.
    const std::uint64_t half = p.forward_window_bytes / 2;
    EXPECT_DOUBLE_EQ(extTspEdgeScore(0, half, 10, p),
                     10.0 * p.forward_weight * 0.5);
    // At (and beyond) the window edge: nothing.
    EXPECT_DOUBLE_EQ(extTspEdgeScore(0, p.forward_window_bytes, 10, p),
                     0.0);
    EXPECT_DOUBLE_EQ(
        extTspEdgeScore(0, p.forward_window_bytes + 512, 10, p), 0.0);
}

TEST(ExtTspEdge, BackwardJumpUsesItsOwnWindow)
{
    ExtTspParams p;
    p.coline_weight = 0.0;
    const std::uint64_t half = p.backward_window_bytes / 2;
    EXPECT_DOUBLE_EQ(extTspEdgeScore(10000, 10000 - half, 4, p),
                     4.0 * p.backward_weight * 0.5);
    EXPECT_DOUBLE_EQ(
        extTspEdgeScore(10000, 10000 - p.backward_window_bytes, 4, p),
        0.0);
}

TEST(ExtTspEdge, CoLineBonusIsAdditive)
{
    ExtTspParams p; // 64B lines, coline_weight 0.05
    // Bytes 64 and 68 share line 1: a 4-byte forward jump scores the
    // decayed forward weight plus the co-residency bonus.
    const double expect =
        p.forward_weight *
            (1.0 - 4.0 / static_cast<double>(p.forward_window_bytes)) +
        p.coline_weight;
    EXPECT_DOUBLE_EQ(extTspEdgeScore(64, 68, 1, p), expect);
    // Bytes 60 and 68 straddle a line boundary: no bonus.
    const double no_bonus =
        p.forward_weight *
        (1.0 - 8.0 / static_cast<double>(p.forward_window_bytes));
    EXPECT_DOUBLE_EQ(extTspEdgeScore(60, 68, 1, p), no_bonus);
}

TEST(ExtTspEdge, ZeroCountScoresZero)
{
    EXPECT_DOUBLE_EQ(extTspEdgeScore(0, 0, 0, {}), 0.0);
}

/**
 * A 5-block diamond with a skewed conditional and a loop back-edge —
 * small enough for the permutation oracle, rich enough that order
 * matters: B0 cond (hot B2 / cold B1), both sides join B3, B3 loops
 * back to B0 (hot) or exits to B4.
 */
Program
diamondProgram()
{
    Program p("diamond");
    ProcedureBuilder b("d");
    auto b0 = b.addBlock(4, Terminator::CondBranch);
    auto b1 = b.addBlock(12, Terminator::UncondBranch); // cold side
    auto b2 = b.addBlock(4, Terminator::FallThrough);   // hot side
    auto b3 = b.addBlock(4, Terminator::CondBranch);
    auto b4 = b.addBlock(2, Terminator::Return);
    b.addCond(b0, b2, b1, 0.9);
    b.addEdge(b1, b3, EdgeKind::UncondTarget);
    b.addEdge(b2, b3, EdgeKind::FallThrough);
    b.addCond(b3, b0, b4, 0.8); // back edge hot
    p.addProcedure(b.build());
    EXPECT_EQ(p.validate(), "");
    return p;
}

profile::Profile
diamondProfile(const Program& p)
{
    profile::Profile prof(p);
    prof.addEdge(0, 2, 90);
    prof.addEdge(0, 1, 10);
    prof.addEdge(2, 3, 90);
    prof.addEdge(1, 3, 10);
    prof.addEdge(3, 0, 80);
    prof.addEdge(3, 4, 20);
    for (program::GlobalBlockId g : {0u, 3u})
        prof.addBlock(g, 100);
    prof.addBlock(2, 90);
    prof.addBlock(1, 10);
    prof.addBlock(4, 20);
    return prof;
}

TEST(ExtTspOracle, EnumeratesEveryEntryPinnedPermutation)
{
    Program p = diamondProgram();
    profile::Profile prof = diamondProfile(p);
    ExhaustiveBest best = bestOrderExhaustive(p, 0, prof);
    EXPECT_EQ(best.permutations, 24u); // 4! with the entry pinned
    ASSERT_EQ(best.order.size(), 5u);
    EXPECT_EQ(best.order[0], 0u);
}

TEST(ExtTspOracle, OracleBeatsOrTiesEveryHeuristic)
{
    Program p = diamondProgram();
    profile::Profile prof = diamondProfile(p);
    ExhaustiveBest best = bestOrderExhaustive(p, 0, prof);

    const std::vector<BlockLocalId> natural{0, 1, 2, 3, 4};
    const std::vector<BlockLocalId> chained =
        core::chainBasicBlocks(p, 0, prof);
    const double s_nat = extTspOrderScore(p, 0, prof, natural);
    const double s_chain = extTspOrderScore(p, 0, prof, chained);
    // The oracle maximizes over a space containing both.
    EXPECT_GE(best.score, s_nat);
    EXPECT_GE(best.score, s_chain);
    // And the chained order should beat the deliberately-bad natural
    // order here (the hot side was placed second on purpose).
    EXPECT_GT(s_chain, s_nat);
    // The model agrees with itself: scoring the oracle's own order
    // reproduces its reported score bit-exactly.
    EXPECT_DOUBLE_EQ(extTspOrderScore(p, 0, prof, best.order),
                     best.score);
}

TEST(ExtTspOracle, HotFallThroughChainIsOptimalWhenUncontested)
{
    // A straight line of fall-throughs: the natural order is already
    // optimal, and the oracle must find exactly it.
    Program p("line");
    ProcedureBuilder b("l");
    auto c0 = b.addBlock(3, Terminator::FallThrough);
    auto c1 = b.addBlock(3, Terminator::FallThrough);
    auto c2 = b.addBlock(3, Terminator::FallThrough);
    auto c3 = b.addBlock(3, Terminator::Return);
    b.addEdge(c0, c1, EdgeKind::FallThrough);
    b.addEdge(c1, c2, EdgeKind::FallThrough);
    b.addEdge(c2, c3, EdgeKind::FallThrough);
    p.addProcedure(b.build());
    ASSERT_EQ(p.validate(), "");
    profile::Profile prof(p);
    prof.addEdge(0, 1, 50);
    prof.addEdge(1, 2, 50);
    prof.addEdge(2, 3, 50);

    ExhaustiveBest best = bestOrderExhaustive(p, 0, prof);
    const std::vector<BlockLocalId> natural{0, 1, 2, 3};
    EXPECT_EQ(best.order, natural);
    ExtTspParams params;
    // Three fall-throughs of count 50 each, plus whatever co-line
    // bonus the tight packing earns; at least the fall-through part.
    EXPECT_GE(best.score, 150.0 * params.fallthrough_weight);
}

TEST(ExtTspOracle, SevenBlockCfgMatchesBruteForce)
{
    // 7 blocks: a chain with two conditionals and a cold tail; the
    // oracle enumerates 720 permutations. The test cross-checks the
    // oracle against an independent argmax over extTspOrderScore.
    Program p("seven");
    ProcedureBuilder b("s");
    auto d0 = b.addBlock(2, Terminator::CondBranch);
    auto d1 = b.addBlock(2, Terminator::FallThrough);
    auto d2 = b.addBlock(6, Terminator::UncondBranch);
    auto d3 = b.addBlock(2, Terminator::CondBranch);
    auto d4 = b.addBlock(2, Terminator::FallThrough);
    auto d5 = b.addBlock(9, Terminator::UncondBranch);
    auto d6 = b.addBlock(2, Terminator::Return);
    b.addCond(d0, d2, d1, 0.2);
    b.addEdge(d1, d3, EdgeKind::FallThrough);
    b.addEdge(d2, d3, EdgeKind::UncondTarget);
    b.addCond(d3, d5, d4, 0.1);
    b.addEdge(d4, d6, EdgeKind::FallThrough);
    b.addEdge(d5, d6, EdgeKind::UncondTarget);
    p.addProcedure(b.build());
    ASSERT_EQ(p.validate(), "");
    profile::Profile prof(p);
    prof.addEdge(0, 1, 80);
    prof.addEdge(0, 2, 20);
    prof.addEdge(1, 3, 80);
    prof.addEdge(2, 3, 20);
    prof.addEdge(3, 4, 90);
    prof.addEdge(3, 5, 10);
    prof.addEdge(4, 6, 90);
    prof.addEdge(5, 6, 10);

    ExhaustiveBest best = bestOrderExhaustive(p, 0, prof);
    EXPECT_EQ(best.permutations, 720u);

    // Independent brute force (entry pinned, like every layout).
    std::vector<BlockLocalId> order{0, 1, 2, 3, 4, 5, 6};
    double max_score = -1.0;
    std::vector<BlockLocalId> rest(order.begin() + 1, order.end());
    std::sort(rest.begin(), rest.end());
    do {
        std::copy(rest.begin(), rest.end(), order.begin() + 1);
        max_score =
            std::max(max_score, extTspOrderScore(p, 0, prof, order));
    } while (std::next_permutation(rest.begin(), rest.end()));
    EXPECT_DOUBLE_EQ(best.score, max_score);
}

} // namespace
} // namespace spikesim::opt
