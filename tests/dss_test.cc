/** @file Tests for the DSS query driver. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "db/dss.hh"

namespace spikesim::db {
namespace {

TpcbConfig
smallConfig()
{
    TpcbConfig c;
    c.branches = 4;
    c.accounts_per_branch = 500;
    c.buffer_frames = 64;
    return c;
}

TEST(Dss, ScanAggregateVisitsEveryRow)
{
    TpcbDatabase db(smallConfig());
    db.setup();
    DssDriver dss(db, nullptr);
    DssOutcome out = dss.scanAggregate(0);
    EXPECT_EQ(out.rows_scanned, db.numAccounts());
    EXPECT_EQ(out.groups, 4);
    EXPECT_EQ(out.aggregate, 0); // fresh accounts all have balance 0
}

TEST(Dss, AggregateTracksUpdates)
{
    TpcbDatabase db(smallConfig());
    db.setup();
    std::int64_t delta_sum = 0;
    for (int i = 0; i < 50; ++i)
        delta_sum += db.runTransaction(0).delta;
    DssDriver dss(db, nullptr);
    EXPECT_EQ(dss.scanAggregate(0).aggregate, delta_sum);
}

TEST(Dss, RangeQueryRespectsSelectivity)
{
    TpcbDatabase db(smallConfig());
    db.setup();
    DssDriver dss(db, nullptr);
    DssOutcome out = dss.rangeQuery(0, 0.1);
    EXPECT_EQ(out.rows_scanned, db.numAccounts() / 10);
    EXPECT_EQ(dss.queriesRun(), 1u);
}

TEST(Dss, HooksSeeScanOps)
{
    struct Names : EngineHooks
    {
        std::vector<std::string> ops;
        int scan_rows = 0;
        void
        onOp(const char* entry, std::span<const int> hints) override
        {
            ops.emplace_back(entry);
            if (ops.back() == "row_scan_next" && !hints.empty())
                scan_rows += hints[0];
        }
    } hooks;
    TpcbDatabase db(smallConfig(), &hooks);
    db.setup();
    DssDriver dss(db, &hooks);
    hooks.ops.clear();
    DssOutcome out = dss.scanAggregate(1);
    auto count = [&](const std::string& name) {
        return std::count(hooks.ops.begin(), hooks.ops.end(), name);
    };
    EXPECT_EQ(count("sql_exec_scan"), 1);
    EXPECT_EQ(count("agg_update"), 4);
    EXPECT_GT(count("row_scan_next"), 10); // once per page
    // The hinted per-page row counts cover the whole table.
    EXPECT_EQ(static_cast<std::int64_t>(hooks.scan_rows),
              out.rows_scanned);
    EXPECT_EQ(count("net_recv"), 1);
    EXPECT_EQ(count("net_reply"), 1);
}

} // namespace
} // namespace spikesim::db
