/** @file Tests for the 2PL lock manager. */

#include <gtest/gtest.h>

#include "db/lockmgr.hh"

namespace spikesim::db {
namespace {

const LockName kRow1{1, 100};
const LockName kRow2{1, 200};

TEST(LockManager, GrantsUncontendedLocks)
{
    LockManager lm;
    EXPECT_EQ(lm.acquire(1, kRow1, LockMode::Exclusive),
              LockResult::Granted);
    EXPECT_TRUE(lm.holds(1, kRow1, LockMode::Exclusive));
    EXPECT_EQ(lm.grants(), 1u);
}

TEST(LockManager, SharedLocksCoexist)
{
    LockManager lm;
    EXPECT_EQ(lm.acquire(1, kRow1, LockMode::Shared),
              LockResult::Granted);
    EXPECT_EQ(lm.acquire(2, kRow1, LockMode::Shared),
              LockResult::Granted);
    EXPECT_TRUE(lm.holds(1, kRow1, LockMode::Shared));
    EXPECT_TRUE(lm.holds(2, kRow1, LockMode::Shared));
}

TEST(LockManager, ExclusiveConflictsWithShared)
{
    LockManager lm;
    lm.acquire(1, kRow1, LockMode::Shared);
    EXPECT_EQ(lm.acquire(2, kRow1, LockMode::Exclusive),
              LockResult::WouldWait);
    EXPECT_EQ(lm.conflicts(), 1u);
}

TEST(LockManager, SharedConflictsWithExclusive)
{
    LockManager lm;
    lm.acquire(1, kRow1, LockMode::Exclusive);
    EXPECT_EQ(lm.acquire(2, kRow1, LockMode::Shared),
              LockResult::WouldWait);
}

TEST(LockManager, ReacquireIsIdempotent)
{
    LockManager lm;
    lm.acquire(1, kRow1, LockMode::Exclusive);
    EXPECT_EQ(lm.acquire(1, kRow1, LockMode::Exclusive),
              LockResult::Granted);
    EXPECT_EQ(lm.acquire(1, kRow1, LockMode::Shared),
              LockResult::Granted); // weaker request satisfied
}

TEST(LockManager, UpgradeWhenSoleHolder)
{
    LockManager lm;
    lm.acquire(1, kRow1, LockMode::Shared);
    EXPECT_EQ(lm.acquire(1, kRow1, LockMode::Exclusive),
              LockResult::Granted);
    EXPECT_TRUE(lm.holds(1, kRow1, LockMode::Exclusive));
}

TEST(LockManager, UpgradeBlockedByOtherReaders)
{
    LockManager lm;
    lm.acquire(1, kRow1, LockMode::Shared);
    lm.acquire(2, kRow1, LockMode::Shared);
    EXPECT_EQ(lm.acquire(1, kRow1, LockMode::Exclusive),
              LockResult::WouldWait);
}

TEST(LockManager, ReleaseAllFreesResources)
{
    LockManager lm;
    lm.acquire(1, kRow1, LockMode::Exclusive);
    lm.acquire(1, kRow2, LockMode::Shared);
    EXPECT_EQ(lm.numLockedResources(), 2u);
    lm.releaseAll(1);
    EXPECT_EQ(lm.numLockedResources(), 0u);
    EXPECT_EQ(lm.acquire(2, kRow1, LockMode::Exclusive),
              LockResult::Granted);
}

TEST(LockManager, ReleaseRestoresSharedModeForRemainingReaders)
{
    LockManager lm;
    lm.acquire(1, kRow1, LockMode::Shared);
    lm.acquire(2, kRow1, LockMode::Shared);
    lm.releaseAll(2);
    // txn 1 is now the sole reader and may upgrade.
    EXPECT_EQ(lm.acquire(1, kRow1, LockMode::Exclusive),
              LockResult::Granted);
}

TEST(LockManager, DetectsTwoPartyDeadlock)
{
    LockManager lm;
    lm.acquire(1, kRow1, LockMode::Exclusive);
    lm.acquire(2, kRow2, LockMode::Exclusive);
    // 1 waits for 2.
    EXPECT_EQ(lm.acquire(1, kRow2, LockMode::Exclusive),
              LockResult::WouldWait);
    // 2 -> 1 would close the cycle.
    EXPECT_EQ(lm.acquire(2, kRow1, LockMode::Exclusive),
              LockResult::Deadlock);
    EXPECT_EQ(lm.deadlocks(), 1u);
}

TEST(LockManager, DetectsThreePartyDeadlock)
{
    LockManager lm;
    const LockName r3{1, 300};
    lm.acquire(1, kRow1, LockMode::Exclusive);
    lm.acquire(2, kRow2, LockMode::Exclusive);
    lm.acquire(3, r3, LockMode::Exclusive);
    EXPECT_EQ(lm.acquire(1, kRow2, LockMode::Exclusive),
              LockResult::WouldWait);
    EXPECT_EQ(lm.acquire(2, r3, LockMode::Exclusive),
              LockResult::WouldWait);
    EXPECT_EQ(lm.acquire(3, kRow1, LockMode::Exclusive),
              LockResult::Deadlock);
}

TEST(LockManager, WaitRegistrationClearsOnGrant)
{
    LockManager lm;
    lm.acquire(1, kRow1, LockMode::Exclusive);
    EXPECT_EQ(lm.acquire(2, kRow1, LockMode::Exclusive),
              LockResult::WouldWait);
    lm.releaseAll(1);
    EXPECT_EQ(lm.acquire(2, kRow1, LockMode::Exclusive),
              LockResult::Granted);
    // txn 2 no longer waits; txn 1 re-requesting cannot see a cycle.
    EXPECT_EQ(lm.acquire(1, kRow1, LockMode::Exclusive),
              LockResult::WouldWait);
}

TEST(LockManager, CancelWaitDropsEdge)
{
    LockManager lm;
    lm.acquire(1, kRow1, LockMode::Exclusive);
    EXPECT_EQ(lm.acquire(2, kRow1, LockMode::Exclusive),
              LockResult::WouldWait);
    lm.cancelWait(2);
    // With 2's wait edge gone, 1 waiting on 2's resources is fine.
    lm.acquire(2, kRow2, LockMode::Exclusive);
    EXPECT_EQ(lm.acquire(1, kRow2, LockMode::Exclusive),
              LockResult::WouldWait);
}

} // namespace
} // namespace spikesim::db
