/** @file Tests for the two-level memory hierarchy. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace spikesim::mem {
namespace {

HierarchyConfig
tinyConfig()
{
    HierarchyConfig c;
    c.l1i = {1024, 64, 1};
    c.l1d = {1024, 64, 1};
    c.l2 = {4096, 64, 1};
    c.itlb_entries = 2;
    return c;
}

TEST(Hierarchy, L1MissGoesToL2)
{
    MemoryHierarchy h(tinyConfig());
    h.fetchLine(0, Owner::App);
    EXPECT_EQ(h.stats().l1i.accesses, 1u);
    EXPECT_EQ(h.stats().l1i.misses, 1u);
    EXPECT_EQ(h.stats().l2i.accesses, 1u);
    EXPECT_EQ(h.stats().l2i.misses, 1u);
    h.fetchLine(0, Owner::App);
    EXPECT_EQ(h.stats().l1i.misses, 1u); // L1 hit, no L2 traffic
    EXPECT_EQ(h.stats().l2i.accesses, 1u);
}

TEST(Hierarchy, L2CatchesL1Conflicts)
{
    MemoryHierarchy h(tinyConfig());
    // Two lines conflicting in the 1KB L1 but distinct in the 4KB L2.
    h.fetchLine(0, Owner::App);
    h.fetchLine(1024, Owner::App);
    h.fetchLine(0, Owner::App); // L1 conflict miss, L2 hit
    EXPECT_EQ(h.stats().l1i.misses, 3u);
    EXPECT_EQ(h.stats().l2i.misses, 2u);
}

TEST(Hierarchy, DataAndInstructionsShareL2)
{
    MemoryHierarchy h(tinyConfig());
    h.fetchLine(0, Owner::App);
    h.dataLine(4096); // same L2 set as address 0 (4KB direct L2)
    h.fetchLine(0, Owner::App); // L1 hit: unified L2 not consulted
    EXPECT_EQ(h.stats().l2d.misses, 1u);
    // Force the L1I line out, then refetch: L2 line was displaced by
    // the data line, so it misses in L2 too.
    h.fetchLine(1024, Owner::App);
    h.fetchLine(2048, Owner::App);
    h.fetchLine(0, Owner::App);
    EXPECT_EQ(h.stats().l2i.misses, 4u);
}

TEST(Hierarchy, ITlbMissesCounted)
{
    MemoryHierarchy h(tinyConfig());
    h.fetchLine(0 * 8192, Owner::App);
    h.fetchLine(1 * 8192, Owner::App);
    h.fetchLine(2 * 8192, Owner::App);
    h.fetchLine(0 * 8192, Owner::App); // evicted from 2-entry TLB
    EXPECT_EQ(h.stats().itlb_misses, 4u);
}

TEST(Hierarchy, StatsAggregate)
{
    HierarchyStats a, b;
    a.l1i.accesses = 1;
    a.l1i.misses = 2;
    b.l1i.accesses = 10;
    b.l2d.misses = 3;
    a += b;
    EXPECT_EQ(a.l1i.accesses, 11u);
    EXPECT_EQ(a.l1i.misses, 2u);
    EXPECT_EQ(a.l2d.misses, 3u);
}

} // namespace
} // namespace spikesim::mem
