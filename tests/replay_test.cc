/** @file Tests for trace replay against the cache simulators. */

#include <gtest/gtest.h>

#include "core/layout.hh"
#include "program/builder.hh"
#include "sim/replay.hh"

namespace spikesim::sim {
namespace {

using program::EdgeKind;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

/** One proc with two 16-instr (64-byte) blocks. */
Program
twoLineProgram()
{
    Program p("r");
    ProcedureBuilder b("p");
    auto a = b.addBlock(16, Terminator::FallThrough);
    auto r = b.addBlock(16, Terminator::Return);
    b.addEdge(a, r, EdgeKind::FallThrough);
    p.addProcedure(b.build());
    EXPECT_EQ(p.validate(), "");
    return p;
}

TEST(Replay, CountsLineMissesPerCpu)
{
    Program p = twoLineProgram();
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext c0, c1;
    c1.cpu = 1;
    // CPU0 runs both blocks twice; CPU1 once.
    for (int i = 0; i < 2; ++i) {
        buf.onBlock(c0, trace::ImageId::App, 0);
        buf.onBlock(c0, trace::ImageId::App, 1);
    }
    buf.onBlock(c1, trace::ImageId::App, 0);

    Replayer rep(buf, layout);
    EXPECT_EQ(rep.numCpus(), 2);
    auto result = rep.icache({1024, 64, 1}, StreamFilter::AppOnly);
    // CPU0: 2 cold misses + 2 hits; CPU1: 1 cold miss.
    EXPECT_EQ(result.accesses, 5u);
    EXPECT_EQ(result.misses, 3u);
    EXPECT_EQ(result.app_misses, 3u);
    EXPECT_EQ(result.kernel_misses, 0u);
}

TEST(Replay, BlockSpanningLinesTouchesEachLine)
{
    Program p("s");
    ProcedureBuilder b("p");
    b.addBlock(40, Terminator::Return); // 160 bytes = 3 x 64B lines
    p.addProcedure(b.build());
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    buf.onBlock(ctx, trace::ImageId::App, 0);
    Replayer rep(buf, layout);
    auto result = rep.icache({1024, 64, 1}, StreamFilter::AppOnly);
    EXPECT_EQ(result.accesses, 3u);
    EXPECT_EQ(result.misses, 3u);
}

TEST(Replay, FiltersSelectStreams)
{
    Program app = twoLineProgram();
    Program kern = twoLineProgram();
    core::Layout app_layout = core::baselineLayout(app, 0);
    core::Layout kern_layout = core::baselineLayout(kern, 0x100000);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    buf.onBlock(ctx, trace::ImageId::App, 0);
    buf.onBlock(ctx, trace::ImageId::Kernel, 0);
    buf.onBlock(ctx, trace::ImageId::Kernel, 1);

    Replayer rep(buf, app_layout, &kern_layout);
    EXPECT_EQ(rep.icache({1024, 64, 1}, StreamFilter::AppOnly).accesses,
              1u);
    EXPECT_EQ(
        rep.icache({1024, 64, 1}, StreamFilter::KernelOnly).accesses,
        2u);
    EXPECT_EQ(rep.icache({1024, 64, 1}, StreamFilter::Combined).accesses,
              3u);
}

TEST(Replay, InterferenceMatrixAttributesVictims)
{
    Program app = twoLineProgram();
    Program kern = twoLineProgram();
    core::Layout app_layout = core::baselineLayout(app, 0);
    // Kernel text maps onto the same cache set (same low bits).
    core::Layout kern_layout = core::baselineLayout(kern, 0x10000);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    buf.onBlock(ctx, trace::ImageId::App, 0);    // cold fill
    buf.onBlock(ctx, trace::ImageId::Kernel, 0); // displaces app
    buf.onBlock(ctx, trace::ImageId::App, 0);    // displaces kernel

    Replayer rep(buf, app_layout, &kern_layout);
    auto result = rep.icache({1024, 64, 1}, StreamFilter::Combined);
    EXPECT_EQ(result.misses, 3u);
    // app miss on empty, kernel miss on app line, app miss on kernel.
    EXPECT_EQ(result.interference.counts[0][2], 1u);
    EXPECT_EQ(result.interference.counts[1][0], 1u);
    EXPECT_EQ(result.interference.counts[0][1], 1u);
    EXPECT_EQ(result.interference.missesBy(0), result.app_misses);
    EXPECT_EQ(result.interference.missesBy(1), result.kernel_misses);
}

TEST(Replay, DynamicInstrsRespectsLayoutAdjustedSizes)
{
    Program p = twoLineProgram();
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    buf.onBlock(ctx, trace::ImageId::App, 0);
    buf.onBlock(ctx, trace::ImageId::App, 1);
    Replayer rep(buf, layout);
    EXPECT_EQ(rep.dynamicInstrs(StreamFilter::AppOnly), 32u);
    EXPECT_EQ(rep.dynamicInstrs(StreamFilter::KernelOnly), 0u);
}

TEST(Replay, InstrumentedMatchesSimpleCacheMisses)
{
    // On a line-aligned layout, word-granular and line-granular replay
    // agree on miss counts.
    Program p = twoLineProgram();
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    for (int i = 0; i < 5; ++i) {
        buf.onBlock(ctx, trace::ImageId::App, 0);
        buf.onBlock(ctx, trace::ImageId::App, 1);
    }
    Replayer rep(buf, layout);
    auto simple = rep.icache({128, 64, 1}, StreamFilter::AppOnly);
    auto inst = rep.instrumented({128, 64, 1}, StreamFilter::AppOnly);
    EXPECT_EQ(inst.misses, simple.misses);
}

TEST(Replay, InstrumentedSeesFullLineUse)
{
    Program p = twoLineProgram();
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    buf.onBlock(ctx, trace::ImageId::App, 0); // 16 instrs = full 64B line
    Replayer rep(buf, layout);
    auto inst = rep.instrumented({128, 64, 1}, StreamFilter::AppOnly,
                                 /*flush_at_end=*/true);
    EXPECT_EQ(inst.words_used.bucket(16), 1u);
    EXPECT_DOUBLE_EQ(inst.unused_word_fraction, 0.0);
}

TEST(Replay, HierarchyCountsInstructionsAndData)
{
    Program p = twoLineProgram();
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    buf.onBlock(ctx, trace::ImageId::App, 0);
    buf.onData(ctx, 0x80000000ULL);
    buf.onData(ctx, 0x80000000ULL);
    Replayer rep(buf, layout);
    mem::HierarchyConfig config;
    auto result = rep.hierarchy(config);
    EXPECT_EQ(result.instrs, 16u);
    EXPECT_EQ(result.total.l1i.accesses, 1u);
    EXPECT_EQ(result.total.l1d.accesses, 2u);
    EXPECT_EQ(result.total.l1d.misses, 1u);
    auto no_data = rep.hierarchy(config, /*include_data=*/false);
    EXPECT_EQ(no_data.total.l1d.accesses, 0u);
}

TEST(Replay, CoherenceCountsMigratingDataLines)
{
    Program p = twoLineProgram();
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext c0, c1;
    c1.cpu = 1;
    // The same data line ping-pongs between two CPUs.
    buf.onData(c0, 0x80000000ULL);
    buf.onData(c1, 0x80000000ULL);
    buf.onData(c0, 0x80000000ULL);
    // A private line stays put.
    buf.onData(c1, 0x90000000ULL);
    buf.onData(c1, 0x90000000ULL);
    // Give CPU1 an instruction event so numCpus() covers it even when
    // traces are data-only in this test.
    buf.onBlock(c1, trace::ImageId::App, 0);

    Replayer rep(buf, layout);
    mem::HierarchyConfig config;
    auto with = rep.hierarchy(config, true, /*model_coherence=*/true);
    EXPECT_EQ(with.total.comm_misses, 2u);
    auto without = rep.hierarchy(config, true, false);
    EXPECT_EQ(without.total.comm_misses, 0u);
}

TEST(Replay, FetchBreaksCountDiscontinuities)
{
    Program p = twoLineProgram();
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    // 0 -> 1 is sequential; re-running 0 afterwards is a break.
    buf.onBlock(ctx, trace::ImageId::App, 0);
    buf.onBlock(ctx, trace::ImageId::App, 1);
    buf.onBlock(ctx, trace::ImageId::App, 0);
    Replayer rep(buf, layout);
    auto r = rep.hierarchy(mem::HierarchyConfig{});
    EXPECT_EQ(r.fetch_breaks, 2u); // initial fetch + the jump back
}

TEST(Replay, StreamBufferCoversSequentialStreams)
{
    // One long straight-line procedure spanning many lines.
    Program p("sb");
    ProcedureBuilder b("p");
    b.addBlock(160, Terminator::Return); // 640 bytes = 10 x 64B lines
    p.addProcedure(b.build());
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    buf.onBlock(ctx, trace::ImageId::App, 0);
    Replayer rep(buf, layout);
    auto s = rep.streamBuffer({128, 64, 1}, 4,
                              sim::StreamFilter::AppOnly);
    EXPECT_EQ(s.l1Misses(), 10u);
    EXPECT_EQ(s.demandMisses(), 1u);
    EXPECT_EQ(s.streamHits(), 9u);
}

TEST(Replay, ZeroSizedBlocksFetchNothing)
{
    // A branch-only block whose branch is deleted by adjacency.
    Program p("z");
    ProcedureBuilder b("p");
    auto a = b.addBlock(1, Terminator::UncondBranch);
    auto r = b.addBlock(1, Terminator::Return);
    b.addEdge(a, r, EdgeKind::UncondTarget);
    p.addProcedure(b.build());
    core::AssignOptions opts;
    opts.text_base = 0;
    core::Layout layout(p, core::baselineSegments(p), opts);
    ASSERT_EQ(layout.blockSize(0), 0u);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    buf.onBlock(ctx, trace::ImageId::App, 0);
    Replayer rep(buf, layout);
    auto result = rep.icache({1024, 64, 1}, StreamFilter::AppOnly);
    EXPECT_EQ(result.accesses, 0u);
}

} // namespace
} // namespace spikesim::sim
