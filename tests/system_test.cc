/** @file Integration tests for the full simulated system. */

#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.hh"
#include "sim/replay.hh"
#include "sim/system.hh"
#include "sim/timing.hh"

namespace spikesim::sim {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.num_cpus = 2;
    c.processes_per_cpu = 2;
    c.tpcb.branches = 5;
    c.tpcb.accounts_per_branch = 200;
    c.tpcb.buffer_frames = 128;
    c.quantum_instrs = 20'000;
    return c;
}

TEST(System, RunsAndRecordsBothStreams)
{
    System sys(smallConfig());
    sys.setup();
    trace::TraceBuffer buf;
    sys.run(50, buf);
    EXPECT_GT(buf.imageEvents(trace::ImageId::App), 1000u);
    EXPECT_GT(buf.imageEvents(trace::ImageId::Kernel), 100u);
    EXPECT_GT(buf.imageEvents(trace::ImageId::Data), 100u);
    EXPECT_GT(sys.appInstrs(), 0u);
    EXPECT_GT(sys.kernelInstrs(), 0u);
    EXPECT_EQ(sys.database().verify(), "");
}

TEST(System, SetupIsSilent)
{
    System sys(smallConfig());
    trace::TraceBuffer buf;
    sys.setup(); // must not emit anything (no sink attached)
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(sys.appInstrs(), 0u);
}

TEST(System, SpreadsWorkAcrossCpusAndProcesses)
{
    System sys(smallConfig());
    sys.setup();
    trace::TraceBuffer buf;
    sys.run(40, buf);
    std::set<int> cpus, procs;
    for (const auto& e : buf.events()) {
        cpus.insert(e.cpu);
        procs.insert(e.process);
    }
    EXPECT_EQ(cpus.size(), 2u);
    EXPECT_EQ(procs.size(), 4u);
}

TEST(System, DeterministicAcrossInstances)
{
    System a(smallConfig()), b(smallConfig());
    a.setup();
    b.setup();
    trace::TraceBuffer ba, bb;
    a.run(30, ba);
    b.run(30, bb);
    ASSERT_EQ(ba.size(), bb.size());
    for (std::size_t i = 0; i < ba.size(); i += 101) {
        EXPECT_EQ(ba.events()[i].block, bb.events()[i].block);
        EXPECT_EQ(ba.events()[i].image, bb.events()[i].image);
    }
}

TEST(System, ProfilesMatchTraceCounts)
{
    // Profiles collected through a tee must equal block frequencies in
    // a trace of the same run.
    System a(smallConfig()), b(smallConfig());
    a.setup();
    b.setup();
    System::Profiles profiles = a.collectProfiles(25);
    trace::TraceBuffer buf;
    b.run(25, buf);
    std::vector<std::uint64_t> counts(a.appProg().numBlocks(), 0);
    for (const auto& e : buf.events())
        if (e.image == trace::ImageId::App)
            counts[e.block]++;
    for (program::GlobalBlockId g = 0; g < counts.size(); g += 13)
        EXPECT_EQ(profiles.app.blockCount(g), counts[g]) << g;
}

TEST(System, QuantumInjectsSchedulerActivity)
{
    SystemConfig config = smallConfig();
    config.quantum_instrs = 5'000; // frequent preemption
    System sys(config);
    sys.setup();
    trace::TraceBuffer buf;
    sys.run(40, buf);
    const auto& counts = sys.kernel().serviceCounts();
    auto timer = counts.find("intr_timer");
    auto sched = counts.find("sched_switch");
    ASSERT_NE(timer, counts.end());
    ASSERT_NE(sched, counts.end());
    EXPECT_GT(timer->second, 10u);
    EXPECT_EQ(timer->second, sched->second);
}

TEST(System, EndToEndOptimizationReducesMisses)
{
    // The headline result, in miniature: profile, optimize, replay.
    System sys(smallConfig());
    sys.setup();
    sys.warmup(10);
    System::Profiles profiles = sys.collectProfiles(60);
    trace::TraceBuffer buf;
    sys.run(60, buf);

    core::PipelineOptions base_opts;
    base_opts.combo = core::OptCombo::Base;
    core::Layout base =
        core::buildLayout(sys.appProg(), profiles.app, base_opts);
    core::PipelineOptions all_opts;
    all_opts.combo = core::OptCombo::All;
    core::Layout optimized =
        core::buildLayout(sys.appProg(), profiles.app, all_opts);

    Replayer base_rep(buf, base);
    Replayer opt_rep(buf, optimized);
    mem::CacheConfig cache{32 * 1024, 128, 4};
    std::uint64_t base_misses =
        base_rep.icache(cache, StreamFilter::AppOnly).misses;
    std::uint64_t opt_misses =
        opt_rep.icache(cache, StreamFilter::AppOnly).misses;
    EXPECT_LT(opt_misses, base_misses);
}

TEST(Timing, CycleModelIsExact)
{
    mem::HierarchyStats stats;
    stats.l1i.misses = 10;
    stats.l1d.misses = 5;
    stats.l2i.misses = 2;
    stats.l2d.misses = 1;
    stats.itlb_misses = 4;
    PlatformParams p = PlatformParams::sim21364();
    // 1000 instrs + 15*12 + 3*80 + 4*30 = 1000+180+240+120 = 1540.
    EXPECT_EQ(nonIdleCycles(stats, 1000, p), 1540u);
}

TEST(Timing, PlatformPresetsAreDistinct)
{
    PlatformParams a = PlatformParams::alpha21264();
    PlatformParams b = PlatformParams::alpha21164();
    PlatformParams c = PlatformParams::sim21364();
    EXPECT_NE(a.hierarchy.l1i.size_bytes, b.hierarchy.l1i.size_bytes);
    EXPECT_EQ(b.hierarchy.l1i.assoc, 1u);
    EXPECT_EQ(c.hierarchy.l2.size_bytes, 1536u * 1024);
    EXPECT_EQ(b.hierarchy.itlb_entries, 48u);
}

} // namespace
} // namespace spikesim::sim
