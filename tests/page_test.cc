/** @file Tests for the page slot layout. */

#include <gtest/gtest.h>

#include <cstring>

#include "db/page.hh"

namespace spikesim::db {
namespace {

struct Rec
{
    std::int64_t a;
    std::int64_t b;
};

TEST(Page, FormatAndCapacity)
{
    Page p;
    p.format(7, PageType::Heap, 16);
    EXPECT_EQ(p.header().id, 7u);
    EXPECT_EQ(p.header().type, PageType::Heap);
    EXPECT_EQ(p.capacity(), Page::kPayloadBytes / 16);
    EXPECT_FALSE(p.full());
    EXPECT_EQ(p.header().num_slots, 0u);
}

TEST(Page, AppendReadWrite)
{
    Page p;
    p.format(1, PageType::Heap, sizeof(Rec));
    Rec r1{10, 20};
    std::uint16_t s = p.appendSlot(&r1);
    EXPECT_EQ(s, 0u);
    Rec out{};
    p.readSlot(0, out);
    EXPECT_EQ(out.a, 10);
    EXPECT_EQ(out.b, 20);
    Rec r2{30, 40};
    p.writeSlot(0, r2);
    p.readSlot(0, out);
    EXPECT_EQ(out.a, 30);
}

TEST(Page, InsertAtShiftsSlots)
{
    Page p;
    p.format(1, PageType::BtreeLeaf, sizeof(Rec));
    Rec a{1, 0}, c{3, 0};
    p.appendSlot(&a);
    p.appendSlot(&c);
    Rec b{2, 0};
    p.insertSlotAt(1, &b);
    EXPECT_EQ(p.header().num_slots, 3u);
    Rec out{};
    p.readSlot(0, out);
    EXPECT_EQ(out.a, 1);
    p.readSlot(1, out);
    EXPECT_EQ(out.a, 2);
    p.readSlot(2, out);
    EXPECT_EQ(out.a, 3);
}

TEST(Page, InsertAtEndEqualsAppend)
{
    Page p;
    p.format(1, PageType::BtreeLeaf, sizeof(Rec));
    Rec a{1, 0};
    p.insertSlotAt(0, &a);
    Rec b{2, 0};
    p.insertSlotAt(1, &b);
    Rec out{};
    p.readSlot(1, out);
    EXPECT_EQ(out.a, 2);
}

TEST(Page, RemoveAtShiftsDown)
{
    Page p;
    p.format(1, PageType::BtreeLeaf, sizeof(Rec));
    for (std::int64_t i = 0; i < 4; ++i) {
        Rec r{i, 0};
        p.appendSlot(&r);
    }
    p.removeSlotAt(1);
    EXPECT_EQ(p.header().num_slots, 3u);
    Rec out{};
    p.readSlot(1, out);
    EXPECT_EQ(out.a, 2);
    p.readSlot(2, out);
    EXPECT_EQ(out.a, 3);
}

TEST(Page, SetSlotCountTruncates)
{
    Page p;
    p.format(1, PageType::BtreeLeaf, sizeof(Rec));
    for (std::int64_t i = 0; i < 5; ++i) {
        Rec r{i, 0};
        p.appendSlot(&r);
    }
    p.setSlotCount(2);
    EXPECT_EQ(p.header().num_slots, 2u);
}

TEST(Page, FillsToCapacity)
{
    Page p;
    p.format(1, PageType::Heap, 104);
    std::uint8_t row[104] = {0};
    while (!p.full())
        p.appendSlot(row);
    EXPECT_EQ(p.header().num_slots, p.capacity());
    EXPECT_EQ(p.capacity(), (kPageBytes - 64) / 104);
}

TEST(Page, CopyPreservesContent)
{
    Page p;
    p.format(9, PageType::Heap, sizeof(Rec));
    Rec r{42, 43};
    p.appendSlot(&r);
    Page q = p; // value semantics (used by SimDisk)
    Rec out{};
    q.readSlot(0, out);
    EXPECT_EQ(out.a, 42);
    EXPECT_EQ(q.header().id, 9u);
}

} // namespace
} // namespace spikesim::db
