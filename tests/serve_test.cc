#include <gtest/gtest.h>

#include <numeric>

#include "core/pipeline.hh"
#include "serve/arrival.hh"
#include "serve/queueing.hh"
#include "serve/service.hh"
#include "sim/replay.hh"
#include "sim/system.hh"
#include "sim/timing.hh"
#include "support/threadpool.hh"

// The open-loop serving subsystem: arrival generation, the bounded
// FIFO queueing model, and the per-transaction service-time walk —
// including the differential check that the solo service model replays
// the hierarchy exactly like Replayer::hierarchy.

namespace spikesim {
namespace {

serve::ArrivalConfig
smallArrivals()
{
    serve::ArrivalConfig c;
    c.sessions = 20;
    c.rate = 1e-3; // ~1000 arrivals over the horizon
    c.horizon_cycles = 1'000'000;
    c.seed = 42;
    return c;
}

TEST(Arrival, DeterministicSortedAndBounded)
{
    serve::ArrivalConfig c = smallArrivals();
    std::vector<serve::Arrival> a = serve::generateArrivals(c);
    std::vector<serve::Arrival> b = serve::generateArrivals(c);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].session, b[i].session);
        EXPECT_LT(a[i].time, c.horizon_cycles);
        EXPECT_LT(a[i].session, c.sessions);
        if (i > 0)
            EXPECT_GE(a[i].time, a[i - 1].time);
    }
    // Roughly rate * horizon arrivals (Poisson, generous tolerance).
    EXPECT_GT(a.size(), 700u);
    EXPECT_LT(a.size(), 1300u);
}

TEST(Arrival, SeedChangesTheStream)
{
    serve::ArrivalConfig c = smallArrivals();
    std::vector<serve::Arrival> a = serve::generateArrivals(c);
    c.seed = 43;
    std::vector<serve::Arrival> b = serve::generateArrivals(c);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].time != b[i].time;
    EXPECT_TRUE(differs);
}

TEST(Arrival, BurstyMatchesLongRunRate)
{
    serve::ArrivalConfig c = smallArrivals();
    c.horizon_cycles = 10'000'000; // long horizon to average bursts out
    std::vector<serve::Arrival> poisson = serve::generateArrivals(c);
    c.kind = serve::ArrivalKind::Bursty;
    std::vector<serve::Arrival> bursty = serve::generateArrivals(c);
    ASSERT_FALSE(bursty.empty());
    // Same configured long-run rate, within 15%.
    const double ratio = static_cast<double>(bursty.size()) /
                         static_cast<double>(poisson.size());
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.15);
}

TEST(Arrival, ConfigCheckCatchesNonsense)
{
    serve::ArrivalConfig c = smallArrivals();
    EXPECT_EQ(c.check(), "");
    c.sessions = 0;
    EXPECT_NE(c.check(), "");
    c = smallArrivals();
    c.rate = 0.0;
    EXPECT_NE(c.check(), "");
    c = smallArrivals();
    c.horizon_cycles = 0;
    EXPECT_NE(c.check(), "");
    c = smallArrivals();
    c.kind = serve::ArrivalKind::Bursty;
    c.on_fraction = 0.0;
    EXPECT_NE(c.check(), "");
}

TEST(Queueing, PercentileSortedNearestRank)
{
    const std::vector<std::uint64_t> s = {10, 20, 30, 40};
    EXPECT_EQ(serve::percentileSorted(s, 0.0), 10u);
    EXPECT_EQ(serve::percentileSorted(s, 0.5), 20u);
    EXPECT_EQ(serve::percentileSorted(s, 0.75), 30u);
    EXPECT_EQ(serve::percentileSorted(s, 1.0), 40u);
    EXPECT_EQ(serve::percentileSorted({}, 0.5), 0u);
}

TEST(Queueing, FifoSingleServerMath)
{
    // One shard, one service value: the queue is pure FIFO arithmetic.
    const std::vector<serve::Arrival> arrivals = {
        {0, 0}, {10, 0}, {20, 0}};
    const std::vector<std::uint64_t> service = {100};
    serve::QueueConfig qc;
    qc.shards = 1;
    qc.queue_bound = 8;
    qc.keep_latencies = true;
    serve::ServingResult r =
        serve::simulateOpenLoop(arrivals, service, 1'000, qc);
    EXPECT_EQ(r.offered, 3u);
    EXPECT_EQ(r.completed, 3u);
    EXPECT_EQ(r.dropped, 0u);
    // Completions at 100, 200, 300 -> latencies 100, 190, 280.
    ASSERT_EQ(r.latencies_sorted.size(), 3u);
    EXPECT_EQ(r.latencies_sorted[0], 100u);
    EXPECT_EQ(r.latencies_sorted[1], 190u);
    EXPECT_EQ(r.latencies_sorted[2], 280u);
    EXPECT_EQ(r.makespan_cycles, 300u);
    EXPECT_EQ(r.max_latency, 280u);
    // Server busy the whole makespan.
    EXPECT_DOUBLE_EQ(r.utilization, 1.0);
    // Depths seen: 0, 1, 2.
    EXPECT_EQ(r.depth_hist[0], 1u);
    EXPECT_EQ(r.depth_hist[1], 1u);
    EXPECT_EQ(r.depth_hist[2], 1u);
}

TEST(Queueing, BoundedAdmissionDrops)
{
    // bound 1 = server only, no waiting room: back-to-back arrivals
    // during service are dropped.
    const std::vector<serve::Arrival> arrivals = {
        {0, 0}, {1, 0}, {2, 0}, {150, 0}};
    const std::vector<std::uint64_t> service = {100};
    serve::QueueConfig qc;
    qc.shards = 1;
    qc.queue_bound = 1;
    serve::ServingResult r =
        serve::simulateOpenLoop(arrivals, service, 1'000, qc);
    EXPECT_EQ(r.offered, 4u);
    EXPECT_EQ(r.completed, 2u); // t=0 and t=150 (first done at 100)
    EXPECT_EQ(r.dropped, 2u);
    EXPECT_EQ(r.shards[0].dropped, 2u);
}

TEST(Queueing, SessionsPinToShards)
{
    // Two sessions on two shards never queue behind each other.
    const std::vector<serve::Arrival> arrivals = {
        {0, 0}, {0, 1}, {10, 0}, {10, 1}};
    const std::vector<std::uint64_t> service = {100};
    serve::QueueConfig qc;
    qc.shards = 2;
    qc.queue_bound = 8;
    qc.keep_latencies = true;
    serve::ServingResult r =
        serve::simulateOpenLoop(arrivals, service, 1'000, qc);
    EXPECT_EQ(r.completed, 4u);
    ASSERT_EQ(r.shards.size(), 2u);
    EXPECT_EQ(r.shards[0].arrivals, 2u);
    EXPECT_EQ(r.shards[1].arrivals, 2u);
    // Each shard: latencies 100 and 190 — identical streams.
    EXPECT_EQ(r.latencies_sorted[0], 100u);
    EXPECT_EQ(r.latencies_sorted[1], 100u);
    EXPECT_EQ(r.latencies_sorted[2], 190u);
    EXPECT_EQ(r.latencies_sorted[3], 190u);
}

TEST(Queueing, PoolWidthDoesNotChangeResults)
{
    serve::ArrivalConfig ac = smallArrivals();
    const std::vector<serve::Arrival> arrivals =
        serve::generateArrivals(ac);
    std::vector<std::uint64_t> service(64);
    for (std::size_t i = 0; i < service.size(); ++i)
        service[i] = 500 + 37 * i;
    serve::QueueConfig qc;
    qc.shards = 4;
    qc.queue_bound = 16;
    qc.seed = 9;
    qc.keep_latencies = true;
    qc.window_cycles = ac.horizon_cycles / 16;
    serve::ServingResult serial = serve::simulateOpenLoop(
        arrivals, service, ac.horizon_cycles, qc, nullptr);
    support::ThreadPool pool(3);
    serve::ServingResult threaded = serve::simulateOpenLoop(
        arrivals, service, ac.horizon_cycles, qc, &pool);
    EXPECT_EQ(serial.completed, threaded.completed);
    EXPECT_EQ(serial.dropped, threaded.dropped);
    EXPECT_EQ(serial.p50, threaded.p50);
    EXPECT_EQ(serial.p99, threaded.p99);
    EXPECT_EQ(serial.p999, threaded.p999);
    EXPECT_EQ(serial.makespan_cycles, threaded.makespan_cycles);
    EXPECT_EQ(serial.latencies_sorted, threaded.latencies_sorted);
    EXPECT_EQ(serial.depth_hist, threaded.depth_hist);
    // The merged sketch and the flight recorder windows are integer
    // bucket counts merged in shard order: byte-identical too.
    EXPECT_EQ(serial.latency_sketch.buckets(),
              threaded.latency_sketch.buckets());
    ASSERT_EQ(serial.windows.size(), threaded.windows.size());
    for (std::size_t w = 0; w < serial.windows.size(); ++w) {
        EXPECT_EQ(serial.windows[w].arrivals,
                  threaded.windows[w].arrivals);
        EXPECT_EQ(serial.windows[w].completed,
                  threaded.windows[w].completed);
        EXPECT_EQ(serial.windows[w].dropped,
                  threaded.windows[w].dropped);
        EXPECT_EQ(serial.windows[w].depth_max,
                  threaded.windows[w].depth_max);
        EXPECT_EQ(serial.windows[w].latency.buckets(),
                  threaded.windows[w].latency.buckets());
    }
}

TEST(Queueing, SketchPercentilesTrackTheSortOracle)
{
    // With keep_latencies on, the exact sorted path and the sketch run
    // side by side: every sketch percentile must sit within the
    // sketch's relative-error bound above the nearest-rank oracle.
    serve::ArrivalConfig ac = smallArrivals();
    const std::vector<serve::Arrival> arrivals =
        serve::generateArrivals(ac);
    std::vector<std::uint64_t> service(64);
    for (std::size_t i = 0; i < service.size(); ++i)
        service[i] = 300 + 91 * i * i;
    serve::QueueConfig qc;
    qc.shards = 4;
    qc.queue_bound = 16;
    qc.seed = 5;
    qc.keep_latencies = true;
    serve::ServingResult r = serve::simulateOpenLoop(
        arrivals, service, ac.horizon_cycles, qc);
    ASSERT_FALSE(r.latencies_sorted.empty());
    EXPECT_EQ(r.latency_sketch.count(), r.latencies_sorted.size());
    const auto check = [&](std::uint64_t sketch_v, double q) {
        const std::uint64_t exact =
            serve::percentileSorted(r.latencies_sorted, q);
        EXPECT_GE(sketch_v, exact) << "q=" << q;
        EXPECT_LE(sketch_v,
                  exact + exact / 128 + 1)
            << "q=" << q;
    };
    check(r.p50, 0.50);
    check(r.p90, 0.90);
    check(r.p99, 0.99);
    check(r.p999, 0.999);
    // Extrema and mean are exact, not sketched.
    EXPECT_EQ(r.max_latency, r.latencies_sorted.back());
    std::uint64_t total = 0;
    for (std::uint64_t l : r.latencies_sorted)
        total += l;
    EXPECT_DOUBLE_EQ(
        r.mean_latency,
        static_cast<double>(total) /
            static_cast<double>(r.latencies_sorted.size()));
}

TEST(Queueing, WindowAccountingBinsByTime)
{
    // Window width 100: arrival at t binned by t/100, completion by
    // done/100. Single shard, service 100 cycles.
    const std::vector<serve::Arrival> arrivals = {
        {0, 0}, {10, 0}, {250, 0}};
    const std::vector<std::uint64_t> service = {100};
    serve::QueueConfig qc;
    qc.shards = 1;
    qc.queue_bound = 8;
    qc.window_cycles = 100;
    serve::ServingResult r =
        serve::simulateOpenLoop(arrivals, service, 1'000, qc);
    EXPECT_EQ(r.window_cycles, 100u);
    // Completions at 100, 200, 350 -> windows 1, 2, 3.
    ASSERT_EQ(r.windows.size(), 4u);
    EXPECT_EQ(r.windows[0].arrivals, 2u); // t=0, t=10
    EXPECT_EQ(r.windows[2].arrivals, 1u); // t=250
    EXPECT_EQ(r.windows[0].completed, 0u);
    EXPECT_EQ(r.windows[1].completed, 1u); // done=100 (window 1)
    EXPECT_EQ(r.windows[2].completed, 1u); // done=200 (window 2)
    EXPECT_EQ(r.windows[3].completed, 1u); // done=350
    EXPECT_EQ(r.windows[0].depth_max, 1u); // t=10 saw depth 1
    std::uint64_t arrivals_total = 0;
    std::uint64_t completed_total = 0;
    for (const serve::WindowStats& w : r.windows) {
        arrivals_total += w.arrivals;
        completed_total += w.completed;
        EXPECT_EQ(w.latency.count(), w.completed);
    }
    EXPECT_EQ(arrivals_total, r.offered);
    EXPECT_EQ(completed_total, r.completed);
}

sim::SystemConfig
smallSystem()
{
    sim::SystemConfig c;
    c.num_cpus = 2;
    c.processes_per_cpu = 2;
    c.tpcb.branches = 5;
    c.tpcb.accounts_per_branch = 200;
    c.tpcb.buffer_frames = 128;
    c.quantum_instrs = 20'000;
    return c;
}

TEST(ServiceModel, SegmentsSplitAtProcessChanges)
{
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    ctx.process = 0;
    buf.onBlock(ctx, trace::ImageId::App, 0);
    buf.onBlock(ctx, trace::ImageId::App, 1);
    ctx.process = 1;
    buf.onBlock(ctx, trace::ImageId::App, 2);
    ctx.process = 0;
    buf.onBlock(ctx, trace::ImageId::App, 3);
    auto segs = serve::ServiceModel::segments(buf);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(segs[0], (std::pair<std::size_t, std::size_t>{0, 2}));
    EXPECT_EQ(segs[1], (std::pair<std::size_t, std::size_t>{2, 3}));
    EXPECT_EQ(segs[2], (std::pair<std::size_t, std::size_t>{3, 4}));
}

TEST(ServiceModel, SoloMatchesReplayerHierarchy)
{
    sim::System sys(smallSystem());
    sys.setup();
    sys.warmup(10);
    trace::TraceBuffer buf;
    sys.run(40, buf);

    core::Layout app = core::baselineLayout(
        sys.appProg(), sys.config().app_text_base);
    core::Layout kern = core::baselineLayout(
        sys.kernelProg(), sys.config().kernel_text_base);
    const sim::PlatformParams platform =
        sim::PlatformParams::sim21364();

    sim::Replayer rep(buf, app, &kern);
    sim::HierarchyReplayResult oracle =
        rep.hierarchy(platform.hierarchy, /*include_data=*/true);

    serve::ServiceModelConfig smc;
    smc.platform = platform;
    serve::ServiceModel model(buf, app, &kern, smc);
    const serve::ServiceStats& st = model.stats();

    // Same walk: identical instruction, fetch-break, and miss counts.
    EXPECT_EQ(st.instrs, oracle.instrs);
    EXPECT_EQ(st.fetch_breaks, oracle.fetch_breaks);
    EXPECT_EQ(st.mem.l1i.misses, oracle.total.l1i.misses);
    EXPECT_EQ(st.mem.l1d.misses, oracle.total.l1d.misses);
    EXPECT_EQ(st.mem.l2i.misses, oracle.total.l2i.misses);
    EXPECT_EQ(st.mem.l2d.misses, oracle.total.l2d.misses);
    EXPECT_EQ(st.mem.itlb_misses, oracle.total.itlb_misses);

    // Per-request cycles sum to the whole-trace non-idle cycles (the
    // sim21364 weights are integers, so no rounding drift).
    const std::uint64_t whole = sim::nonIdleCycles(
        oracle.total, oracle.instrs, platform, oracle.fetch_breaks);
    const auto& per_req = model.requestCycles();
    const std::uint64_t summed = std::accumulate(
        per_req.begin(), per_req.end(), std::uint64_t{0});
    EXPECT_EQ(summed, whole);
    EXPECT_EQ(st.requests, per_req.size());
    EXPECT_EQ(st.total_cycles, summed);
    EXPECT_GT(st.requests, 10u);
}

TEST(ServiceModel, TenantsShareL2AndInflateService)
{
    sim::System sys(smallSystem());
    sys.setup();
    sys.warmup(10);
    trace::TraceBuffer buf;
    sys.run(30, buf);

    core::Layout app = core::baselineLayout(
        sys.appProg(), sys.config().app_text_base);
    core::Layout kern = core::baselineLayout(
        sys.kernelProg(), sys.config().kernel_text_base);

    serve::ServiceModelConfig solo;
    serve::ServiceModel one(buf, app, &kern, solo);
    serve::ServiceModelConfig shared = solo;
    shared.tenants = 2;
    serve::ServiceModel two(buf, app, &kern, shared);

    // Twice the requests (each tenant runs the whole trace)...
    EXPECT_EQ(two.stats().requests, 2 * one.stats().requests);
    EXPECT_EQ(two.stats().instrs, 2 * one.stats().instrs);
    // ...and LRU interference in the shared L2/iTLB can only add
    // misses, so total cycles are at least 2x solo.
    EXPECT_GE(two.stats().total_cycles, 2 * one.stats().total_cycles);
    EXPECT_GE(two.stats().mem.itlb_misses,
              2 * one.stats().mem.itlb_misses);
}

} // namespace
} // namespace spikesim
