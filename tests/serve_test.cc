#include <gtest/gtest.h>

#include <numeric>

#include "core/pipeline.hh"
#include "serve/arrival.hh"
#include "serve/queueing.hh"
#include "serve/service.hh"
#include "sim/replay.hh"
#include "sim/system.hh"
#include "sim/timing.hh"
#include "support/threadpool.hh"

// The open-loop serving subsystem: arrival generation, the bounded
// FIFO queueing model, and the per-transaction service-time walk —
// including the differential check that the solo service model replays
// the hierarchy exactly like Replayer::hierarchy.

namespace spikesim {
namespace {

serve::ArrivalConfig
smallArrivals()
{
    serve::ArrivalConfig c;
    c.sessions = 20;
    c.rate = 1e-3; // ~1000 arrivals over the horizon
    c.horizon_cycles = 1'000'000;
    c.seed = 42;
    return c;
}

TEST(Arrival, DeterministicSortedAndBounded)
{
    serve::ArrivalConfig c = smallArrivals();
    std::vector<serve::Arrival> a = serve::generateArrivals(c);
    std::vector<serve::Arrival> b = serve::generateArrivals(c);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].session, b[i].session);
        EXPECT_LT(a[i].time, c.horizon_cycles);
        EXPECT_LT(a[i].session, c.sessions);
        if (i > 0)
            EXPECT_GE(a[i].time, a[i - 1].time);
    }
    // Roughly rate * horizon arrivals (Poisson, generous tolerance).
    EXPECT_GT(a.size(), 700u);
    EXPECT_LT(a.size(), 1300u);
}

TEST(Arrival, SeedChangesTheStream)
{
    serve::ArrivalConfig c = smallArrivals();
    std::vector<serve::Arrival> a = serve::generateArrivals(c);
    c.seed = 43;
    std::vector<serve::Arrival> b = serve::generateArrivals(c);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].time != b[i].time;
    EXPECT_TRUE(differs);
}

TEST(Arrival, BurstyMatchesLongRunRate)
{
    serve::ArrivalConfig c = smallArrivals();
    c.horizon_cycles = 10'000'000; // long horizon to average bursts out
    std::vector<serve::Arrival> poisson = serve::generateArrivals(c);
    c.kind = serve::ArrivalKind::Bursty;
    std::vector<serve::Arrival> bursty = serve::generateArrivals(c);
    ASSERT_FALSE(bursty.empty());
    // Same configured long-run rate, within 15%.
    const double ratio = static_cast<double>(bursty.size()) /
                         static_cast<double>(poisson.size());
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.15);
}

TEST(Arrival, ConfigCheckCatchesNonsense)
{
    serve::ArrivalConfig c = smallArrivals();
    EXPECT_EQ(c.check(), "");
    c.sessions = 0;
    EXPECT_NE(c.check(), "");
    c = smallArrivals();
    c.rate = 0.0;
    EXPECT_NE(c.check(), "");
    c = smallArrivals();
    c.horizon_cycles = 0;
    EXPECT_NE(c.check(), "");
    c = smallArrivals();
    c.kind = serve::ArrivalKind::Bursty;
    c.on_fraction = 0.0;
    EXPECT_NE(c.check(), "");
}

TEST(Queueing, PercentileSortedNearestRank)
{
    const std::vector<std::uint64_t> s = {10, 20, 30, 40};
    EXPECT_EQ(serve::percentileSorted(s, 0.0), 10u);
    EXPECT_EQ(serve::percentileSorted(s, 0.5), 20u);
    EXPECT_EQ(serve::percentileSorted(s, 0.75), 30u);
    EXPECT_EQ(serve::percentileSorted(s, 1.0), 40u);
    EXPECT_EQ(serve::percentileSorted({}, 0.5), 0u);
}

TEST(Queueing, FifoSingleServerMath)
{
    // One shard, one service value: the queue is pure FIFO arithmetic.
    const std::vector<serve::Arrival> arrivals = {
        {0, 0}, {10, 0}, {20, 0}};
    const std::vector<std::uint64_t> service = {100};
    serve::QueueConfig qc;
    qc.shards = 1;
    qc.queue_bound = 8;
    serve::ServingResult r =
        serve::simulateOpenLoop(arrivals, service, 1'000, qc);
    EXPECT_EQ(r.offered, 3u);
    EXPECT_EQ(r.completed, 3u);
    EXPECT_EQ(r.dropped, 0u);
    // Completions at 100, 200, 300 -> latencies 100, 190, 280.
    ASSERT_EQ(r.latencies_sorted.size(), 3u);
    EXPECT_EQ(r.latencies_sorted[0], 100u);
    EXPECT_EQ(r.latencies_sorted[1], 190u);
    EXPECT_EQ(r.latencies_sorted[2], 280u);
    EXPECT_EQ(r.makespan_cycles, 300u);
    EXPECT_EQ(r.max_latency, 280u);
    // Server busy the whole makespan.
    EXPECT_DOUBLE_EQ(r.utilization, 1.0);
    // Depths seen: 0, 1, 2.
    EXPECT_EQ(r.depth_hist[0], 1u);
    EXPECT_EQ(r.depth_hist[1], 1u);
    EXPECT_EQ(r.depth_hist[2], 1u);
}

TEST(Queueing, BoundedAdmissionDrops)
{
    // bound 1 = server only, no waiting room: back-to-back arrivals
    // during service are dropped.
    const std::vector<serve::Arrival> arrivals = {
        {0, 0}, {1, 0}, {2, 0}, {150, 0}};
    const std::vector<std::uint64_t> service = {100};
    serve::QueueConfig qc;
    qc.shards = 1;
    qc.queue_bound = 1;
    serve::ServingResult r =
        serve::simulateOpenLoop(arrivals, service, 1'000, qc);
    EXPECT_EQ(r.offered, 4u);
    EXPECT_EQ(r.completed, 2u); // t=0 and t=150 (first done at 100)
    EXPECT_EQ(r.dropped, 2u);
    EXPECT_EQ(r.shards[0].dropped, 2u);
}

TEST(Queueing, SessionsPinToShards)
{
    // Two sessions on two shards never queue behind each other.
    const std::vector<serve::Arrival> arrivals = {
        {0, 0}, {0, 1}, {10, 0}, {10, 1}};
    const std::vector<std::uint64_t> service = {100};
    serve::QueueConfig qc;
    qc.shards = 2;
    qc.queue_bound = 8;
    serve::ServingResult r =
        serve::simulateOpenLoop(arrivals, service, 1'000, qc);
    EXPECT_EQ(r.completed, 4u);
    ASSERT_EQ(r.shards.size(), 2u);
    EXPECT_EQ(r.shards[0].arrivals, 2u);
    EXPECT_EQ(r.shards[1].arrivals, 2u);
    // Each shard: latencies 100 and 190 — identical streams.
    EXPECT_EQ(r.latencies_sorted[0], 100u);
    EXPECT_EQ(r.latencies_sorted[1], 100u);
    EXPECT_EQ(r.latencies_sorted[2], 190u);
    EXPECT_EQ(r.latencies_sorted[3], 190u);
}

TEST(Queueing, PoolWidthDoesNotChangeResults)
{
    serve::ArrivalConfig ac = smallArrivals();
    const std::vector<serve::Arrival> arrivals =
        serve::generateArrivals(ac);
    std::vector<std::uint64_t> service(64);
    for (std::size_t i = 0; i < service.size(); ++i)
        service[i] = 500 + 37 * i;
    serve::QueueConfig qc;
    qc.shards = 4;
    qc.queue_bound = 16;
    qc.seed = 9;
    serve::ServingResult serial = serve::simulateOpenLoop(
        arrivals, service, ac.horizon_cycles, qc, nullptr);
    support::ThreadPool pool(3);
    serve::ServingResult threaded = serve::simulateOpenLoop(
        arrivals, service, ac.horizon_cycles, qc, &pool);
    EXPECT_EQ(serial.completed, threaded.completed);
    EXPECT_EQ(serial.dropped, threaded.dropped);
    EXPECT_EQ(serial.p50, threaded.p50);
    EXPECT_EQ(serial.p99, threaded.p99);
    EXPECT_EQ(serial.p999, threaded.p999);
    EXPECT_EQ(serial.makespan_cycles, threaded.makespan_cycles);
    EXPECT_EQ(serial.latencies_sorted, threaded.latencies_sorted);
    EXPECT_EQ(serial.depth_hist, threaded.depth_hist);
}

sim::SystemConfig
smallSystem()
{
    sim::SystemConfig c;
    c.num_cpus = 2;
    c.processes_per_cpu = 2;
    c.tpcb.branches = 5;
    c.tpcb.accounts_per_branch = 200;
    c.tpcb.buffer_frames = 128;
    c.quantum_instrs = 20'000;
    return c;
}

TEST(ServiceModel, SegmentsSplitAtProcessChanges)
{
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    ctx.process = 0;
    buf.onBlock(ctx, trace::ImageId::App, 0);
    buf.onBlock(ctx, trace::ImageId::App, 1);
    ctx.process = 1;
    buf.onBlock(ctx, trace::ImageId::App, 2);
    ctx.process = 0;
    buf.onBlock(ctx, trace::ImageId::App, 3);
    auto segs = serve::ServiceModel::segments(buf);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(segs[0], (std::pair<std::size_t, std::size_t>{0, 2}));
    EXPECT_EQ(segs[1], (std::pair<std::size_t, std::size_t>{2, 3}));
    EXPECT_EQ(segs[2], (std::pair<std::size_t, std::size_t>{3, 4}));
}

TEST(ServiceModel, SoloMatchesReplayerHierarchy)
{
    sim::System sys(smallSystem());
    sys.setup();
    sys.warmup(10);
    trace::TraceBuffer buf;
    sys.run(40, buf);

    core::Layout app = core::baselineLayout(
        sys.appProg(), sys.config().app_text_base);
    core::Layout kern = core::baselineLayout(
        sys.kernelProg(), sys.config().kernel_text_base);
    const sim::PlatformParams platform =
        sim::PlatformParams::sim21364();

    sim::Replayer rep(buf, app, &kern);
    sim::HierarchyReplayResult oracle =
        rep.hierarchy(platform.hierarchy, /*include_data=*/true);

    serve::ServiceModelConfig smc;
    smc.platform = platform;
    serve::ServiceModel model(buf, app, &kern, smc);
    const serve::ServiceStats& st = model.stats();

    // Same walk: identical instruction, fetch-break, and miss counts.
    EXPECT_EQ(st.instrs, oracle.instrs);
    EXPECT_EQ(st.fetch_breaks, oracle.fetch_breaks);
    EXPECT_EQ(st.mem.l1i.misses, oracle.total.l1i.misses);
    EXPECT_EQ(st.mem.l1d.misses, oracle.total.l1d.misses);
    EXPECT_EQ(st.mem.l2i.misses, oracle.total.l2i.misses);
    EXPECT_EQ(st.mem.l2d.misses, oracle.total.l2d.misses);
    EXPECT_EQ(st.mem.itlb_misses, oracle.total.itlb_misses);

    // Per-request cycles sum to the whole-trace non-idle cycles (the
    // sim21364 weights are integers, so no rounding drift).
    const std::uint64_t whole = sim::nonIdleCycles(
        oracle.total, oracle.instrs, platform, oracle.fetch_breaks);
    const auto& per_req = model.requestCycles();
    const std::uint64_t summed = std::accumulate(
        per_req.begin(), per_req.end(), std::uint64_t{0});
    EXPECT_EQ(summed, whole);
    EXPECT_EQ(st.requests, per_req.size());
    EXPECT_EQ(st.total_cycles, summed);
    EXPECT_GT(st.requests, 10u);
}

TEST(ServiceModel, TenantsShareL2AndInflateService)
{
    sim::System sys(smallSystem());
    sys.setup();
    sys.warmup(10);
    trace::TraceBuffer buf;
    sys.run(30, buf);

    core::Layout app = core::baselineLayout(
        sys.appProg(), sys.config().app_text_base);
    core::Layout kern = core::baselineLayout(
        sys.kernelProg(), sys.config().kernel_text_base);

    serve::ServiceModelConfig solo;
    serve::ServiceModel one(buf, app, &kern, solo);
    serve::ServiceModelConfig shared = solo;
    shared.tenants = 2;
    serve::ServiceModel two(buf, app, &kern, shared);

    // Twice the requests (each tenant runs the whole trace)...
    EXPECT_EQ(two.stats().requests, 2 * one.stats().requests);
    EXPECT_EQ(two.stats().instrs, 2 * one.stats().instrs);
    // ...and LRU interference in the shared L2/iTLB can only add
    // misses, so total cycles are at least 2x solo.
    EXPECT_GE(two.stats().total_cycles, 2 * one.stats().total_cycles);
    EXPECT_GE(two.stats().mem.itlb_misses,
              2 * one.stats().mem.itlb_misses);
}

} // namespace
} // namespace spikesim
