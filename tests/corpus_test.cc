/**
 * @file
 * Tests for the persistent trace/profile corpus: varint/checksum
 * primitives, randomized TraceBuffer and Profile round trips, corpus
 * save/load, the workload fingerprint, and corruption handling
 * (truncated file, flipped payload byte, version/magic mismatch must
 * die cleanly in fatal(), never replay garbage).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "profile/serialize.hh"
#include "program/builder.hh"
#include "sim/corpus.hh"
#include "support/checksum.hh"
#include "support/rng.hh"
#include "support/varint.hh"
#include "trace/serialize.hh"

namespace spikesim {
namespace {

using support::ByteReader;
using support::putVarint;
using trace::ExecContext;
using trace::ImageId;
using trace::TraceBuffer;
using trace::TraceEvent;

TEST(Varint, RoundTripsEdgeValues)
{
    const std::uint64_t values[] = {0,
                                    1,
                                    127,
                                    128,
                                    16383,
                                    16384,
                                    0xffffffffULL,
                                    0x100000000ULL,
                                    0xffffffffffffffffULL};
    std::vector<std::uint8_t> out;
    for (std::uint64_t v : values)
        putVarint(out, v);
    ByteReader r(out.data(), out.size());
    for (std::uint64_t v : values)
        EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
}

TEST(Varint, ZigzagRoundTripsSignedValues)
{
    const std::int64_t values[] = {0, -1, 1, -2, 63, -64, -1000000,
                                   1000000};
    for (std::int64_t v : values)
        EXPECT_EQ(support::zigzagDecode(support::zigzagEncode(v)), v);
    EXPECT_EQ(support::zigzagEncode(0), 0u);
    EXPECT_EQ(support::zigzagEncode(-1), 1u);
    EXPECT_EQ(support::zigzagEncode(1), 2u);
}

TEST(Varint, RandomRoundTrip)
{
    support::Pcg32 rng(11);
    std::vector<std::uint64_t> values;
    std::vector<std::uint8_t> out;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = (static_cast<std::uint64_t>(rng.next()) << 32) |
                          rng.next();
        v >>= rng.nextBounded(64); // cover all byte lengths
        values.push_back(v);
        putVarint(out, v);
    }
    ByteReader r(out.data(), out.size());
    for (std::uint64_t v : values)
        EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
}

using VarintDeathTest = ::testing::Test;

TEST(VarintDeathTest, TruncatedStreamDiesCleanly)
{
    std::vector<std::uint8_t> out;
    putVarint(out, 0x4000); // multi-byte varint
    ByteReader r(out.data(), out.size() - 1);
    EXPECT_DEATH(r.varint(), "truncated");
    std::vector<std::uint8_t> raw{1, 2, 3};
    ByteReader r2(raw.data(), raw.size());
    EXPECT_DEATH(r2.raw(4), "truncated");
}

TEST(Checksum, MatchesFnv1aReference)
{
    EXPECT_EQ(support::fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
    // FNV-1a("a") per the reference implementation.
    EXPECT_EQ(support::fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
}

TEST(Checksum, StreamingEqualsOneShot)
{
    const char data[] = "spikesim corpus checksum";
    support::Fnv1a64 h;
    h.update(data, 10);
    h.update(data + 10, sizeof(data) - 1 - 10);
    EXPECT_EQ(h.digest(), support::fnv1a64(data, sizeof(data) - 1));
}

TEST(TraceBuffer, ClearResetsPerImageCounts)
{
    TraceBuffer buf;
    ExecContext ctx;
    buf.onBlock(ctx, ImageId::App, 1);
    buf.onData(ctx, 0x100);
    buf.clear();
    EXPECT_EQ(buf.imageEvents(ImageId::App), 0u);
    EXPECT_EQ(buf.imageEvents(ImageId::Data), 0u);
}

TEST(TraceBuffer, AppendTracksPerImageCounts)
{
    TraceBuffer buf;
    TraceEvent e;
    e.block = 9;
    e.image = ImageId::Kernel;
    buf.append(e);
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.imageEvents(ImageId::Kernel), 1u);
}

/** Bursty synthetic trace: runs of one image, slowly-changing context,
 *  spatially local block ids — the shape the encoder exploits — plus
 *  uniform noise so the test is not only the friendly case. */
TraceBuffer
randomTrace(std::uint64_t seed, std::size_t n)
{
    TraceBuffer buf;
    support::Pcg32 rng(seed);
    TraceEvent e;
    std::uint32_t walk[trace::kNumImages] = {500, 90000, 4000000};
    std::size_t made = 0;
    while (made < n) {
        e.image = static_cast<ImageId>(rng.nextBounded(3));
        e.process = static_cast<std::uint16_t>(rng.nextBounded(32));
        e.cpu = static_cast<std::uint8_t>(rng.nextBounded(4));
        const std::size_t run = std::min<std::size_t>(
            n - made, 1 + rng.nextBounded(50));
        auto& pos = walk[static_cast<std::size_t>(e.image)];
        for (std::size_t i = 0; i < run; ++i) {
            if (rng.nextBool(0.05))
                pos = rng.next(); // occasional far jump
            else
                pos += static_cast<std::uint32_t>(
                           rng.nextBounded(17)) -
                       8;
            e.block = pos;
            buf.append(e);
            ++made;
        }
    }
    return buf;
}

TEST(TraceSerialize, RandomizedRoundTripIsBitIdentical)
{
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
        for (std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{1000}, std::size_t{20000}}) {
            TraceBuffer buf = randomTrace(seed, n);
            std::vector<std::uint8_t> bytes;
            trace::TraceWriter w;
            w.addAll(buf);
            w.finish(bytes);

            TraceBuffer out;
            ByteReader r(bytes.data(), bytes.size());
            trace::TraceReader reader(r);
            EXPECT_EQ(reader.numEvents(), n);
            reader.readAll(out);
            EXPECT_TRUE(r.done());

            ASSERT_EQ(out.size(), buf.size());
            for (std::size_t i = 0; i < n; ++i) {
                const TraceEvent& a = buf.events()[i];
                const TraceEvent& b = out.events()[i];
                ASSERT_EQ(a.block, b.block) << "event " << i;
                ASSERT_EQ(a.process, b.process) << "event " << i;
                ASSERT_EQ(a.cpu, b.cpu) << "event " << i;
                ASSERT_EQ(a.image, b.image) << "event " << i;
            }
            for (std::size_t img = 0; img < trace::kNumImages; ++img)
                EXPECT_EQ(
                    out.imageEvents(static_cast<ImageId>(img)),
                    buf.imageEvents(static_cast<ImageId>(img)));
        }
    }
}

TEST(TraceSerialize, StreamingNextMatchesReadAll)
{
    TraceBuffer buf = randomTrace(77, 5000);
    std::vector<std::uint8_t> bytes;
    trace::TraceWriter w;
    w.addAll(buf);
    w.finish(bytes);

    ByteReader r(bytes.data(), bytes.size());
    trace::TraceReader reader(r);
    TraceEvent e;
    std::size_t i = 0;
    while (reader.next(e)) {
        ASSERT_LT(i, buf.size());
        EXPECT_EQ(e.block, buf.events()[i].block);
        ++i;
    }
    EXPECT_EQ(i, buf.size());
    EXPECT_FALSE(reader.next(e)); // stays exhausted
}

TEST(TraceSerialize, CompressesTheEventStream)
{
    TraceBuffer buf = randomTrace(9, 50000);
    std::vector<std::uint8_t> bytes;
    trace::TraceWriter w;
    w.addAll(buf);
    w.finish(bytes);
    // Even with 5% far jumps the encoding must beat the raw 8 B/event
    // by a wide margin.
    EXPECT_LT(bytes.size() * 4, buf.size() * sizeof(TraceEvent));
}

program::Program
littleProgram()
{
    using program::EdgeKind;
    using program::ProcedureBuilder;
    using program::Terminator;
    program::Program p("corpus-test");
    {
        ProcedureBuilder b("caller");
        auto c = b.addBlock(2, Terminator::Call, 1);
        auto r = b.addBlock(1, Terminator::Return);
        b.addEdge(c, r, EdgeKind::FallThrough);
        p.addProcedure(b.build());
    }
    {
        ProcedureBuilder b("callee");
        auto e = b.addBlock(3, Terminator::FallThrough);
        auto r = b.addBlock(1, Terminator::Return);
        b.addEdge(e, r, EdgeKind::FallThrough);
        p.addProcedure(b.build());
    }
    return p;
}

TEST(ProfileSerialize, RandomizedRoundTrip)
{
    program::Program prog = littleProgram();
    support::Pcg32 rng(21);
    profile::Profile p(prog);
    for (std::uint32_t g = 0; g < prog.numBlocks(); ++g)
        if (rng.nextBool(0.7))
            p.addBlock(g, 1 + rng.nextBounded(1000000));
    p.addEdge(0, 1, 42);
    p.addEdge(2, 3, 7);
    p.addCall(0, 1, 42);

    std::vector<std::uint8_t> bytes;
    profile::appendProfile(p, bytes);
    ByteReader r(bytes.data(), bytes.size());
    profile::Profile q = profile::readProfile(prog, r);
    EXPECT_TRUE(r.done());

    for (std::uint32_t g = 0; g < prog.numBlocks(); ++g)
        EXPECT_EQ(q.blockCount(g), p.blockCount(g));
    EXPECT_EQ(q.edgeCount(0, 1), 42u);
    EXPECT_EQ(q.edgeCount(2, 3), 7u);
    EXPECT_EQ(q.callCount(0, 1), 42u);
    EXPECT_EQ(q.dynamicInstrs(), p.dynamicInstrs());

    // Determinism: serializing the reloaded profile reproduces the
    // exact bytes (hash-map order cannot leak into the file).
    std::vector<std::uint8_t> bytes2;
    profile::appendProfile(q, bytes2);
    EXPECT_EQ(bytes2, bytes);
}

using ProfileSerializeDeathTest = ::testing::Test;

TEST(ProfileSerializeDeathTest, WrongProgramDies)
{
    program::Program prog = littleProgram();
    profile::Profile p(prog);
    p.addBlock(0, 5);
    std::vector<std::uint8_t> bytes;
    profile::appendProfile(p, bytes);

    program::Program other("other");
    {
        program::ProcedureBuilder b("solo");
        b.addBlock(1, program::Terminator::Return);
        other.addProcedure(b.build());
    }
    ByteReader r(bytes.data(), bytes.size());
    EXPECT_DEATH(profile::readProfile(other, r),
                 "does not match program");
}

/** Tiny-but-real workload parameters so corpus tests stay fast. */
sim::CorpusParams
tinyParams()
{
    sim::CorpusParams p;
    p.config.num_cpus = 2;
    p.config.processes_per_cpu = 2;
    p.config.tpcb.branches = 2;
    p.config.tpcb.tellers_per_branch = 2;
    p.config.tpcb.accounts_per_branch = 50;
    p.warmup_txns = 2;
    p.profile_txns = 6;
    p.trace_txns = 6;
    return p;
}

/** One shared generation + save, reused across the corpus tests. */
struct CorpusFixtureState
{
    sim::CorpusParams params = tinyParams();
    sim::GeneratedWorkload gen;
    std::string dir;
    std::string path;

    CorpusFixtureState()
    {
        gen = sim::generateWorkload(params, nullptr);
        dir = ::testing::TempDir() + "spikesim_corpus_test";
        std::filesystem::create_directories(dir);
        path = dir + "/" + sim::corpusFileName(params);
        sim::saveCorpus(params, *gen.profiles, gen.buf, path);
    }
};

CorpusFixtureState&
corpusFixture()
{
    static CorpusFixtureState s;
    return s;
}

TEST(Corpus, SaveLoadRoundTripIsBitIdentical)
{
    CorpusFixtureState& f = corpusFixture();
    sim::System system(f.params.config);
    std::optional<sim::System::Profiles> profiles;
    TraceBuffer buf;
    ASSERT_TRUE(
        sim::loadCorpus(f.path, f.params, system, profiles, buf));

    ASSERT_EQ(buf.size(), f.gen.buf.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
        const TraceEvent& a = f.gen.buf.events()[i];
        const TraceEvent& b = buf.events()[i];
        ASSERT_EQ(a.block, b.block);
        ASSERT_EQ(a.process, b.process);
        ASSERT_EQ(a.cpu, b.cpu);
        ASSERT_EQ(a.image, b.image);
    }
    for (std::size_t img = 0; img < trace::kNumImages; ++img)
        EXPECT_EQ(buf.imageEvents(static_cast<ImageId>(img)),
                  f.gen.buf.imageEvents(static_cast<ImageId>(img)));

    std::vector<std::uint8_t> loaded_bytes, fresh_bytes;
    profile::appendProfile(profiles->app, loaded_bytes);
    profile::appendProfile(profiles->kernel, loaded_bytes);
    profile::appendProfile(f.gen.profiles->app, fresh_bytes);
    profile::appendProfile(f.gen.profiles->kernel, fresh_bytes);
    EXPECT_EQ(loaded_bytes, fresh_bytes);
}

TEST(Corpus, VerifyAgainstFreshPasses)
{
    CorpusFixtureState& f = corpusFixture();
    sim::System system(f.params.config);
    std::optional<sim::System::Profiles> profiles;
    TraceBuffer buf;
    ASSERT_TRUE(
        sim::loadCorpus(f.path, f.params, system, profiles, buf));
    // fatal()s (and fails the test) on any divergence.
    sim::verifyCorpusAgainstFresh(f.params, *profiles, buf, nullptr);
}

TEST(Corpus, MissingFileIsAMissNotAnError)
{
    CorpusFixtureState& f = corpusFixture();
    sim::System system(f.params.config);
    std::optional<sim::System::Profiles> profiles;
    TraceBuffer buf;
    EXPECT_FALSE(sim::loadCorpus(f.dir + "/no_such_file.spkc", f.params,
                                 system, profiles, buf));
}

TEST(Corpus, FingerprintSeparatesWorkloads)
{
    sim::CorpusParams a = tinyParams();
    sim::CorpusParams b = tinyParams();
    EXPECT_EQ(sim::corpusFingerprint(a), sim::corpusFingerprint(b));

    b.trace_txns += 1;
    EXPECT_NE(sim::corpusFingerprint(a), sim::corpusFingerprint(b));
    EXPECT_NE(sim::corpusFileName(a), sim::corpusFileName(b));

    b = tinyParams();
    b.config.workload_seed ^= 1;
    EXPECT_NE(sim::corpusFingerprint(a), sim::corpusFingerprint(b));

    b = tinyParams();
    b.config.tpcb.accounts_per_branch += 1;
    EXPECT_NE(sim::corpusFingerprint(a), sim::corpusFingerprint(b));
}

TEST(Corpus, MismatchedFingerprintIsAMiss)
{
    CorpusFixtureState& f = corpusFixture();
    sim::CorpusParams other = f.params;
    other.trace_txns += 1;
    sim::System system(other.config);
    std::optional<sim::System::Profiles> profiles;
    TraceBuffer buf;
    // Same (valid) file, different parameters: miss, not corruption.
    EXPECT_FALSE(
        sim::loadCorpus(f.path, other, system, profiles, buf));
}

std::vector<char>
slurp(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(is)),
                             std::istreambuf_iterator<char>());
}

void
spit(const std::string& path, const std::vector<char>& bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

using CorpusDeathTest = ::testing::Test;

TEST(CorpusDeathTest, TruncatedFileDiesCleanly)
{
    CorpusFixtureState& f = corpusFixture();
    std::vector<char> bytes = slurp(f.path);
    ASSERT_GT(bytes.size(), sim::kCorpusHeaderBytes);

    const std::string cut_header = f.dir + "/cut_header.spkc";
    spit(cut_header, std::vector<char>(bytes.begin(), bytes.begin() + 20));
    const std::string cut_payload = f.dir + "/cut_payload.spkc";
    spit(cut_payload,
         std::vector<char>(bytes.begin(), bytes.end() - 25));

    sim::System system(f.params.config);
    std::optional<sim::System::Profiles> profiles;
    TraceBuffer buf;
    EXPECT_DEATH(sim::loadCorpus(cut_header, f.params, system, profiles,
                                 buf),
                 "truncated");
    EXPECT_DEATH(sim::loadCorpus(cut_payload, f.params, system, profiles,
                                 buf),
                 "truncated");
}

TEST(CorpusDeathTest, FlippedPayloadByteDiesOnChecksum)
{
    CorpusFixtureState& f = corpusFixture();
    std::vector<char> bytes = slurp(f.path);
    bytes[sim::kCorpusHeaderBytes + bytes.size() / 2] ^= 0x40;
    const std::string path = f.dir + "/bitrot.spkc";
    spit(path, bytes);

    sim::System system(f.params.config);
    std::optional<sim::System::Profiles> profiles;
    TraceBuffer buf;
    EXPECT_DEATH(
        sim::loadCorpus(path, f.params, system, profiles, buf),
        "checksum mismatch");
}

TEST(CorpusDeathTest, VersionAndMagicMismatchDieCleanly)
{
    CorpusFixtureState& f = corpusFixture();
    std::vector<char> bytes = slurp(f.path);

    std::vector<char> wrong_version = bytes;
    wrong_version[8] = 99; // version field, little-endian low byte
    const std::string vpath = f.dir + "/wrong_version.spkc";
    spit(vpath, wrong_version);

    std::vector<char> wrong_magic = bytes;
    wrong_magic[0] = 'X';
    const std::string mpath = f.dir + "/wrong_magic.spkc";
    spit(mpath, wrong_magic);

    sim::System system(f.params.config);
    std::optional<sim::System::Profiles> profiles;
    TraceBuffer buf;
    EXPECT_DEATH(
        sim::loadCorpus(vpath, f.params, system, profiles, buf),
        "unsupported corpus version");
    EXPECT_DEATH(
        sim::loadCorpus(mpath, f.params, system, profiles, buf),
        "not a spikesim corpus");
}

TEST(System, MeasuresEventRateAndPreReservesTraceBuffers)
{
    sim::CorpusParams p = tinyParams();
    sim::System system(p.config);
    system.setup();
    EXPECT_EQ(system.estimatedEventsPerTxn(), 0u);
    system.warmup(4);
    const std::uint64_t rate = system.estimatedEventsPerTxn();
    EXPECT_GT(rate, 0u);

    TraceBuffer buf;
    const std::uint64_t estimate = 4 * rate;
    system.run(4, buf);
    EXPECT_GT(buf.size(), 0u);
    // run() must have pre-reserved at least its estimate (plus slack).
    EXPECT_GE(buf.events().capacity(), estimate + estimate / 16 + rate);
}

} // namespace
} // namespace spikesim
