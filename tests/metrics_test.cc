/** @file Tests for the footprint and sequence-length metrics. */

#include <gtest/gtest.h>

#include "core/layout.hh"
#include "metrics/footprint.hh"
#include "metrics/sequence.hh"
#include "program/builder.hh"

namespace spikesim::metrics {
namespace {

using program::EdgeKind;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

Program
threeBlocks()
{
    Program p("m");
    ProcedureBuilder b("p");
    auto a = b.addBlock(10, Terminator::FallThrough); // 40 bytes
    auto c = b.addBlock(5, Terminator::FallThrough);  // 20 bytes
    auto r = b.addBlock(5, Terminator::Return);       // 20 bytes
    b.addEdge(a, c, EdgeKind::FallThrough);
    b.addEdge(c, r, EdgeKind::FallThrough);
    p.addProcedure(b.build());
    EXPECT_EQ(p.validate(), "");
    return p;
}

TEST(FootprintCdf, OrdersHottestFirst)
{
    Program p = threeBlocks();
    profile::Profile prof(p);
    prof.addBlock(0, 1);   // 10 instrs x 1   = 10
    prof.addBlock(1, 100); // 5 instrs x 100  = 500
    // block 2 never executes -> not in the footprint
    FootprintCdf cdf(prof);
    ASSERT_EQ(cdf.points().size(), 2u);
    // First point: the hot 5-instr block (20 bytes, ~98% of execution).
    EXPECT_EQ(cdf.points()[0].code_bytes, 20u);
    EXPECT_NEAR(cdf.points()[0].exec_fraction, 500.0 / 510.0, 1e-9);
    EXPECT_EQ(cdf.totalBytes(), 60u);
}

TEST(FootprintCdf, CoverageQueries)
{
    Program p = threeBlocks();
    profile::Profile prof(p);
    prof.addBlock(0, 1);
    prof.addBlock(1, 100);
    FootprintCdf cdf(prof);
    EXPECT_EQ(cdf.bytesForCoverage(0.5), 20u);
    EXPECT_EQ(cdf.bytesForCoverage(0.99), 60u);
    EXPECT_NEAR(cdf.coverageAtBytes(20), 500.0 / 510.0, 1e-9);
    EXPECT_NEAR(cdf.coverageAtBytes(100), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(cdf.coverageAtBytes(3), 0.0);
}

TEST(FootprintCdf, MonotoneNonDecreasing)
{
    Program p = threeBlocks();
    profile::Profile prof(p);
    prof.addBlock(0, 3);
    prof.addBlock(1, 2);
    prof.addBlock(2, 1);
    FootprintCdf cdf(prof);
    double prev = 0;
    for (const auto& pt : cdf.points()) {
        EXPECT_GE(pt.exec_fraction, prev);
        prev = pt.exec_fraction;
    }
    EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST(PackedFootprint, CountsUniqueLines)
{
    Program p = threeBlocks();
    profile::Profile prof(p);
    prof.addBlock(0, 1); // bytes [0,40): lines 0 (and part of 64B line 0)
    core::Layout layout = core::baselineLayout(p, 0);
    // Blocks at 0..40, 40..60, 60..80. With 64B lines: executing block
    // 0 touches line 0 only -> 64 bytes.
    EXPECT_EQ(packedFootprintBytes(prof, layout, 64), 64u);
    prof.addBlock(2, 1); // bytes [60,80): lines 0 and 1 -> 128 total
    EXPECT_EQ(packedFootprintBytes(prof, layout, 64), 128u);
}

TEST(SequenceLengths, BreaksAtNonSequentialFetch)
{
    Program p = threeBlocks();
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    // Execute 0,1,2 sequentially (addresses contiguous), then 0 again
    // (a break), then 2 (another break).
    for (program::GlobalBlockId g : {0u, 1u, 2u, 0u, 2u})
        buf.onBlock(ctx, trace::ImageId::App, g);
    SequenceStats stats =
        sequenceLengths(buf, layout, trace::ImageId::App);
    // Runs: [0,1,2] = 20 instrs, [0] = 10, [2] = 5.
    EXPECT_EQ(stats.lengths.totalSamples(), 3u);
    EXPECT_EQ(stats.lengths.bucket(20), 1u);
    EXPECT_EQ(stats.lengths.bucket(10), 1u);
    EXPECT_EQ(stats.lengths.bucket(5), 1u);
    EXPECT_NEAR(stats.mean, 35.0 / 3.0, 1e-9);
    EXPECT_NEAR(stats.mean_block_size, 35.0 / 5.0, 1e-9);
}

TEST(SequenceLengths, OtherImageBreaksRun)
{
    Program p = threeBlocks();
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    buf.onBlock(ctx, trace::ImageId::App, 0);
    buf.onBlock(ctx, trace::ImageId::Kernel, 0); // kernel interrupts
    buf.onBlock(ctx, trace::ImageId::App, 1);    // would be sequential
    SequenceStats stats =
        sequenceLengths(buf, layout, trace::ImageId::App);
    EXPECT_EQ(stats.lengths.totalSamples(), 2u);
    EXPECT_EQ(stats.lengths.bucket(10), 1u);
    EXPECT_EQ(stats.lengths.bucket(5), 1u);
}

TEST(SequenceLengths, PerCpuRunsAreIndependent)
{
    Program p = threeBlocks();
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext c0, c1;
    c0.cpu = 0;
    c1.cpu = 1;
    // Interleaved but each CPU fetches 0 then 1 sequentially.
    buf.onBlock(c0, trace::ImageId::App, 0);
    buf.onBlock(c1, trace::ImageId::App, 0);
    buf.onBlock(c0, trace::ImageId::App, 1);
    buf.onBlock(c1, trace::ImageId::App, 1);
    SequenceStats stats =
        sequenceLengths(buf, layout, trace::ImageId::App);
    EXPECT_EQ(stats.lengths.totalSamples(), 2u);
    EXPECT_EQ(stats.lengths.bucket(15), 2u);
}

TEST(SequenceLengths, DataEventsDoNotBreakRuns)
{
    Program p = threeBlocks();
    core::Layout layout = core::baselineLayout(p, 0);
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    buf.onBlock(ctx, trace::ImageId::App, 0);
    buf.onData(ctx, 0x12345678);
    buf.onBlock(ctx, trace::ImageId::App, 1);
    SequenceStats stats =
        sequenceLengths(buf, layout, trace::ImageId::App);
    EXPECT_EQ(stats.lengths.totalSamples(), 1u);
    EXPECT_EQ(stats.lengths.bucket(15), 1u);
}

} // namespace
} // namespace spikesim::metrics
