/** @file End-to-end tests for the layout pipelines. */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/pipeline.hh"
#include "profile/profile.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"
#include "trace/trace.hh"

namespace spikesim::core {
namespace {

struct Workload
{
    synth::SyntheticProgram image;
    profile::Profile prof;
    trace::TraceBuffer buf;

    explicit Workload(std::uint64_t seed)
        : image(synth::buildSyntheticProgram(
              synth::SynthParams::kernelLike(seed))),
          prof(image.prog)
    {
        profile::ProfileRecorder rec(trace::ImageId::Kernel, prof);
        trace::TeeSink tee({&rec, &buf});
        synth::CfgWalker w(image.prog, trace::ImageId::Kernel, seed);
        trace::ExecContext ctx;
        for (int i = 0; i < 40; ++i) {
            w.run(image.entry("sys_read"), ctx, tee);
            w.run(image.entry("sys_write"), ctx, tee);
            w.run(image.entry("sched_switch"), ctx, tee);
        }
    }
};

class PipelineCombos
    : public ::testing::TestWithParam<std::tuple<OptCombo, std::uint64_t>>
{
};

TEST_P(PipelineCombos, ProducesValidCompleteLayouts)
{
    auto [combo, seed] = GetParam();
    Workload w(seed);
    PipelineOptions opts;
    opts.combo = combo;
    Layout layout = buildLayout(w.image.prog, w.prof, opts);
    EXPECT_EQ(layout.validate(), "");
    // Every block is placed and sized sanely.
    for (program::GlobalBlockId g = 0; g < w.image.prog.numBlocks();
         ++g) {
        EXPECT_GE(layout.blockAddr(g), layout.textBase());
        EXPECT_LE(layout.blockAddr(g) + layout.blockBytes(g),
                  layout.textLimit());
        std::uint32_t body = w.image.prog.block(g).sizeInstrs;
        EXPECT_LE(layout.blockSize(g), body + 1);
        EXPECT_GE(layout.blockSize(g) + 1, body);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PipelineCombos,
    ::testing::Combine(::testing::Values(OptCombo::Base, OptCombo::POrder,
                                         OptCombo::Chain,
                                         OptCombo::ChainSplit,
                                         OptCombo::ChainPOrder,
                                         OptCombo::All, OptCombo::HotCold,
                                         OptCombo::Cfa),
                       ::testing::Values(3u, 71u)));

TEST(Pipeline, ComboNamesMatchPaperLabels)
{
    EXPECT_STREQ(comboName(OptCombo::Base), "base");
    EXPECT_STREQ(comboName(OptCombo::POrder), "porder");
    EXPECT_STREQ(comboName(OptCombo::Chain), "chain");
    EXPECT_STREQ(comboName(OptCombo::ChainSplit), "chain+split");
    EXPECT_STREQ(comboName(OptCombo::ChainPOrder), "chain+porder");
    EXPECT_STREQ(comboName(OptCombo::All), "all");
    // The combo list may grow over time; consumers key on the names,
    // so the paper's eight must stay present and names must be unique.
    EXPECT_GE(allCombos().size(), 8u);
    std::set<std::string> names;
    for (OptCombo c : allCombos())
        EXPECT_TRUE(names.insert(comboName(c)).second)
            << "duplicate combo name " << comboName(c);
}

TEST(Pipeline, OptimizedPacksTighterThanBase)
{
    Workload w(5);
    PipelineOptions base_opts;
    base_opts.combo = OptCombo::Base;
    Layout base = buildLayout(w.image.prog, w.prof, base_opts);
    PipelineOptions all_opts;
    all_opts.combo = OptCombo::All;
    Layout all = buildLayout(w.image.prog, w.prof, all_opts);
    // Splitting + tight packing shrinks total text (alignment padding
    // and deleted branches).
    EXPECT_LT(all.textBytes(), base.textBytes());
}

TEST(Pipeline, ChainEliminatesHotUnconditionalBranches)
{
    Workload w(7);
    PipelineOptions opts;
    opts.combo = OptCombo::Chain;
    Layout chained = buildLayout(w.image.prog, w.prof, opts);
    EXPECT_GT(chained.branchesDeleted(), 0u);
}

TEST(Pipeline, DeterministicLayouts)
{
    Workload w(9);
    PipelineOptions opts;
    opts.combo = OptCombo::All;
    Layout a = buildLayout(w.image.prog, w.prof, opts);
    Layout b = buildLayout(w.image.prog, w.prof, opts);
    for (program::GlobalBlockId g = 0; g < w.image.prog.numBlocks();
         g += 11)
        EXPECT_EQ(a.blockAddr(g), b.blockAddr(g));
}

TEST(Pipeline, AllPutsColdSegmentsLast)
{
    Workload w(11);
    PipelineOptions opts;
    opts.combo = OptCombo::All;
    Layout layout = buildLayout(w.image.prog, w.prof, opts);
    // Average address of never-executed blocks must be far beyond the
    // average address of hot blocks.
    double hot_sum = 0, hot_n = 0, cold_sum = 0, cold_n = 0;
    for (program::GlobalBlockId g = 0; g < w.image.prog.numBlocks();
         ++g) {
        double a = static_cast<double>(layout.blockAddr(g) -
                                       layout.textBase());
        if (w.prof.blockCount(g) > 0) {
            hot_sum += a;
            hot_n += 1;
        } else {
            cold_sum += a;
            cold_n += 1;
        }
    }
    ASSERT_GT(hot_n, 0);
    ASSERT_GT(cold_n, 0);
    EXPECT_LT(hot_sum / hot_n, 0.5 * (cold_sum / cold_n));
}

} // namespace
} // namespace spikesim::core
