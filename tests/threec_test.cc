/** @file Tests for the three-C miss classification. */

#include <gtest/gtest.h>

#include "mem/threec.hh"
#include "support/rng.hh"

namespace spikesim::mem {
namespace {

TEST(FullyAssocLru, HitsWithinCapacity)
{
    FullyAssocLru lru(3);
    EXPECT_FALSE(lru.access(1));
    EXPECT_FALSE(lru.access(2));
    EXPECT_FALSE(lru.access(3));
    EXPECT_TRUE(lru.access(1));
    EXPECT_TRUE(lru.access(2));
    EXPECT_TRUE(lru.access(3));
}

TEST(FullyAssocLru, EvictsLeastRecentlyUsed)
{
    FullyAssocLru lru(2);
    lru.access(1);
    lru.access(2);
    lru.access(1); // 2 is now LRU
    lru.access(3); // evicts 2
    EXPECT_TRUE(lru.access(1));
    EXPECT_FALSE(lru.access(2));
}

TEST(FullyAssocLru, MatchesSetAssocWhenFullyAssociative)
{
    // A set-associative cache with one set IS fully associative LRU;
    // the two implementations must agree exactly.
    CacheConfig config{1024, 64, 16}; // 1 set x 16 ways
    ASSERT_EQ(config.numSets(), 1u);
    SetAssocCache sa(config);
    FullyAssocLru fa(16);
    support::Pcg32 rng(5);
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t line = rng.nextBounded(64);
        EXPECT_EQ(sa.access(line * 64, Owner::App).hit, fa.access(line));
    }
}

TEST(ThreeC, FirstTouchIsCompulsory)
{
    ClassifyingICache c({1024, 64, 1});
    c.access(0);
    EXPECT_EQ(c.stats().compulsory, 1u);
    EXPECT_EQ(c.stats().capacity, 0u);
    EXPECT_EQ(c.stats().conflict, 0u);
    c.access(0);
    EXPECT_EQ(c.stats().totalMisses(), 1u);
}

TEST(ThreeC, PureConflictMiss)
{
    // Two lines in the same set of a direct-mapped cache; the
    // fully-associative shadow (16 lines) holds both easily.
    ClassifyingICache c({1024, 64, 1});
    c.access(0);
    c.access(1024);
    c.access(0); // conflict: FA would hit
    EXPECT_EQ(c.stats().compulsory, 2u);
    EXPECT_EQ(c.stats().conflict, 1u);
    EXPECT_EQ(c.stats().capacity, 0u);
}

TEST(ThreeC, PureCapacityMiss)
{
    // Cycle through 2x the cache's lines: fully-associative LRU also
    // misses everything on the second pass.
    ClassifyingICache c({1024, 64, 1}); // 16 lines
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t l = 0; l < 32; ++l)
            c.access(l * 64);
    EXPECT_EQ(c.stats().compulsory, 32u);
    EXPECT_EQ(c.stats().capacity, 32u);
    EXPECT_EQ(c.stats().conflict, 0u);
}

TEST(ThreeC, ClassesSumToRealMisses)
{
    // Random stream: the decomposition must account for every miss of
    // an identically configured plain cache.
    CacheConfig config{2048, 64, 2};
    ClassifyingICache c(config);
    SetAssocCache plain(config);
    support::Pcg32 rng(9);
    std::uint64_t plain_misses = 0;
    for (int i = 0; i < 50000; ++i) {
        std::uint64_t addr = rng.nextBounded(16 * 1024);
        c.access(addr);
        plain_misses += plain.access(addr, Owner::App).hit ? 0 : 1;
    }
    EXPECT_EQ(c.stats().totalMisses(), plain_misses);
    EXPECT_EQ(c.stats().accesses(), 50000u);
}

} // namespace
} // namespace spikesim::mem
