/** @file Tests for the TPC-C-style order-entry workload. */

#include <gtest/gtest.h>

#include "db/tpcc.hh"

namespace spikesim::db {
namespace {

TpccConfig
smallConfig(std::uint64_t seed = 21)
{
    TpccConfig c;
    c.warehouses = 2;
    c.districts_per_warehouse = 4;
    c.customers_per_district = 50;
    c.items = 200;
    c.buffer_frames = 128;
    c.seed = seed;
    return c;
}

TEST(Tpcc, SetupPopulatesSchema)
{
    TpccDatabase db(smallConfig());
    db.setup();
    EXPECT_EQ(db.numDistricts(), 8);
    EXPECT_EQ(db.numCustomers(), 400);
    EXPECT_EQ(db.verify(), "");
}

TEST(Tpcc, NewOrderAllocatesSequentialIds)
{
    TpccDatabase db(smallConfig());
    db.setup();
    for (int i = 0; i < 100; ++i) {
        TpccOutcome out = db.runNewOrder(0);
        EXPECT_GE(out.order_lines, 5);
        EXPECT_LE(out.order_lines, 15);
    }
    EXPECT_EQ(db.newOrders(), 100u);
    EXPECT_EQ(db.verify(), "");
}

TEST(Tpcc, PaymentsConserve)
{
    TpccDatabase db(smallConfig());
    db.setup();
    std::int64_t total = 0;
    for (int i = 0; i < 200; ++i)
        total += db.runPayment(0).amount;
    EXPECT_GT(total, 0);
    EXPECT_EQ(db.payments(), 200u);
    EXPECT_EQ(db.verify(), "");
}

TEST(Tpcc, StockLevelIsReadOnly)
{
    TpccDatabase db(smallConfig());
    db.setup();
    for (int i = 0; i < 30; ++i)
        db.runNewOrder(0);
    std::string before = db.verify();
    TpccOutcome out = db.runStockLevel(0);
    EXPECT_EQ(out.kind, TpccKind::StockLevel);
    EXPECT_EQ(db.verify(), before);
}

class TpccMix : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TpccMix, MixedWorkloadStaysConsistent)
{
    TpccDatabase db(smallConfig(GetParam()));
    db.setup();
    int kinds[3] = {0, 0, 0};
    for (int i = 0; i < 400; ++i) {
        TpccOutcome out =
            db.runTransaction(static_cast<std::uint16_t>(i % 4));
        kinds[static_cast<int>(out.kind)]++;
    }
    EXPECT_EQ(db.verify(), "");
    // The mix is ~45/43/12.
    EXPECT_GT(kinds[0], 120);
    EXPECT_GT(kinds[1], 120);
    EXPECT_GT(kinds[2], 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TpccMix, ::testing::Values(1u, 2u, 3u));

TEST(Tpcc, HooksSeeTheOrderEntryOps)
{
    struct Counter : EngineHooks
    {
        int updates = 0, inserts = 0;
        void
        onOp(const char* entry, std::span<const int>) override
        {
            std::string e(entry);
            updates += e == "sql_exec_update" ? 1 : 0;
            inserts += e == "sql_exec_insert" ? 1 : 0;
        }
    } hooks;
    TpccDatabase db(smallConfig(), &hooks);
    db.setup();
    hooks.updates = 0;
    hooks.inserts = 0;
    TpccOutcome out = db.runNewOrder(0);
    // One district update + one per line; one insert per line + the
    // order header.
    EXPECT_EQ(hooks.updates, 1 + out.order_lines);
    EXPECT_EQ(hooks.inserts, out.order_lines + 1);
}

} // namespace
} // namespace spikesim::db
