#include <gtest/gtest.h>

#include "sim/timing.hh"

// The execution-time model (sim/timing.hh): nonIdleCycles arithmetic,
// the three platform presets, fetch-break accounting, and the
// breakdown/total identity that lets benches attribute exactly the
// cycles they report.

namespace spikesim {
namespace {

mem::HierarchyStats
someStats()
{
    mem::HierarchyStats s;
    s.l1i.accesses = 10'000;
    s.l1i.misses = 700;
    s.l1d.accesses = 4'000;
    s.l1d.misses = 300;
    s.l2i.accesses = 700;
    s.l2i.misses = 40;
    s.l2d.accesses = 300;
    s.l2d.misses = 10;
    s.itlb_misses = 25;
    s.comm_misses = 4;
    return s;
}

TEST(TimingTest, NonIdleCyclesArithmetic)
{
    sim::PlatformParams p = sim::PlatformParams::sim21364();
    mem::HierarchyStats s = someStats();
    const std::uint64_t instrs = 50'000;
    const std::uint64_t fetch_breaks = 1'200;

    // sim21364: CPI 1, fetch break 2, L2 hit 12, memory 80, iTLB 30,
    // remote 175 — all integer weights, so the sum is exact.
    const std::uint64_t expected = 50'000 * 1 +        // base
                                   1'200 * 2 +         // fetch breaks
                                   (700 + 300) * 12 +  // L1 misses
                                   (40 + 10) * 80 +    // L2 misses
                                   25 * 30 +           // iTLB refills
                                   4 * 175;            // communication
    EXPECT_EQ(sim::nonIdleCycles(s, instrs, p, fetch_breaks), expected);
}

TEST(TimingTest, FetchBreaksDefaultToZero)
{
    sim::PlatformParams p = sim::PlatformParams::sim21364();
    mem::HierarchyStats s = someStats();
    EXPECT_EQ(sim::nonIdleCycles(s, 1'000, p),
              sim::nonIdleCycles(s, 1'000, p, 0));
    // Each fetch break costs exactly fetch_break_cycles.
    EXPECT_EQ(sim::nonIdleCycles(s, 1'000, p, 10) -
                  sim::nonIdleCycles(s, 1'000, p),
              static_cast<std::uint64_t>(10 * p.fetch_break_cycles));
}

TEST(TimingTest, BreakdownTotalMatchesNonIdleCycles)
{
    mem::HierarchyStats s = someStats();
    for (const sim::PlatformParams& p :
         {sim::PlatformParams::alpha21264(),
          sim::PlatformParams::alpha21164(),
          sim::PlatformParams::sim21364()}) {
        sim::CycleBreakdown b =
            sim::cycleBreakdown(s, 33'333, p, 777);
        EXPECT_EQ(static_cast<std::uint64_t>(b.total()),
                  sim::nonIdleCycles(s, 33'333, p, 777))
            << p.name;
        // Every component is attributed somewhere.
        EXPECT_GT(b.base, 0.0);
        EXPECT_GT(b.fetch_break, 0.0);
        EXPECT_GT(b.l2_hit, 0.0);
        EXPECT_GT(b.memory, 0.0);
        EXPECT_GT(b.itlb, 0.0);
        EXPECT_GT(b.remote, 0.0);
    }
}

TEST(TimingTest, PresetsAreDistinctAndOrdered)
{
    sim::PlatformParams a264 = sim::PlatformParams::alpha21264();
    sim::PlatformParams a164 = sim::PlatformParams::alpha21164();
    sim::PlatformParams s364 = sim::PlatformParams::sim21364();

    // Distinct machines, distinct names and L1I geometries.
    EXPECT_NE(a264.name, a164.name);
    EXPECT_NE(a264.name, s364.name);
    EXPECT_EQ(a164.hierarchy.l1i.size_bytes, 8 * 1024u);
    EXPECT_EQ(a264.hierarchy.l1i.size_bytes, 64 * 1024u);
    EXPECT_EQ(s364.hierarchy.l1i.size_bytes, 64 * 1024u);

    // The paper's published 21364 latencies: 12ns L2, 80ns memory at
    // a 1GHz clock.
    EXPECT_DOUBLE_EQ(s364.l2_hit_cycles, 12.0);
    EXPECT_DOUBLE_EQ(s364.mem_cycles, 80.0);
    EXPECT_DOUBLE_EQ(s364.clock_ghz, 1.0);

    // Same counters cost more cycles on the machine with the slower
    // relative memory (21264 at 120-cycle memory vs 21164 at 60).
    mem::HierarchyStats s = someStats();
    EXPECT_GT(sim::nonIdleCycles(s, 1'000, a264),
              sim::nonIdleCycles(s, 1'000, a164));
}

TEST(TimingTest, CyclesToMicros)
{
    sim::PlatformParams p = sim::PlatformParams::sim21364();
    // 1GHz: 1000 cycles = 1us.
    EXPECT_DOUBLE_EQ(sim::cyclesToMicros(1'000, p), 1.0);
    p.clock_ghz = 0.5;
    EXPECT_DOUBLE_EQ(sim::cyclesToMicros(1'000, p), 2.0);
}

TEST(TimingTest, ZeroActivityIsZeroCycles)
{
    mem::HierarchyStats s;
    sim::PlatformParams p = sim::PlatformParams::sim21364();
    EXPECT_EQ(sim::nonIdleCycles(s, 0, p), 0u);
    EXPECT_DOUBLE_EQ(sim::cycleBreakdown(s, 0, p).total(), 0.0);
}

} // namespace
} // namespace spikesim
