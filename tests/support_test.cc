/** @file Unit tests for the support utilities. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/histogram.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace spikesim::support {
namespace {

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Pcg32, BoundedStaysInBounds)
{
    Pcg32 rng(7);
    for (int i = 0; i < 10000; ++i) {
        std::uint32_t v = rng.nextBounded(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Pcg32, BoundedCoversRange)
{
    Pcg32 rng(9);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        seen[rng.nextBounded(8)]++;
    for (int c : seen)
        EXPECT_GT(c, 300); // each bucket near 500
}

TEST(Pcg32, RangeInclusive)
{
    Pcg32 rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, DoubleInUnitInterval)
{
    Pcg32 rng(13);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Pcg32, BernoulliFrequency)
{
    Pcg32 rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Pcg32, GeometricMeanApproximatesTarget)
{
    Pcg32 rng(19);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextGeometric(5.0, 1000);
    EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Pcg32, GeometricRespectsCap)
{
    Pcg32 rng(21);
    for (int i = 0; i < 5000; ++i) {
        int v = rng.nextGeometric(10.0, 12);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 12);
    }
}

TEST(Pcg32, SplitProducesIndependentStream)
{
    Pcg32 a(23);
    Pcg32 child = a.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Zipf, StaysInRangeAndSkews)
{
    Pcg32 rng(29);
    ZipfSampler zipf(1000, 0.9);
    std::uint64_t first_decile = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        std::uint64_t v = zipf.sample(rng);
        ASSERT_LT(v, 1000u);
        first_decile += v < 100 ? 1 : 0;
    }
    // Heavily skewed: far more than 10% of samples in the first decile.
    EXPECT_GT(first_decile, static_cast<std::uint64_t>(0.4 * n));
}

TEST(Zipf, ThetaZeroIsRoughlyUniform)
{
    Pcg32 rng(31);
    ZipfSampler zipf(10, 0.0);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 20000; ++i)
        seen[zipf.sample(rng)]++;
    for (int c : seen)
        EXPECT_GT(c, 1200);
}

TEST(Histogram, RecordsAndClamps)
{
    Histogram h(4);
    h.record(0);
    h.record(1, 2);
    h.record(3);
    h.record(99); // clamps into last bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.totalSamples(), 5u);
}

TEST(Histogram, MeanUsesUnclampedValues)
{
    Histogram h(4);
    h.record(100);
    EXPECT_DOUBLE_EQ(h.mean(), 100.0);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(8);
    Pcg32 rng(37);
    for (int i = 0; i < 1000; ++i)
        h.record(rng.nextBounded(8));
    double sum = 0;
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        sum += h.fraction(i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a(4), b(4);
    a.record(1);
    b.record(1, 3);
    b.record(2);
    a.merge(b);
    EXPECT_EQ(a.bucket(1), 4u);
    EXPECT_EQ(a.bucket(2), 1u);
    EXPECT_EQ(a.totalSamples(), 5u);
}

TEST(Log2Histogram, BucketsByLog2)
{
    Log2Histogram h(8);
    h.record(0); // bucket 0
    h.record(1); // bucket 0
    h.record(2); // bucket 1
    h.record(3); // bucket 1
    h.record(4); // bucket 2
    h.record(1023); // bucket 9 -> clamps to 7
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(7), 1u);
}

TEST(StatAccumulator, BasicMoments)
{
    StatAccumulator s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.record(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatAccumulator, MergeMatchesBatch)
{
    Pcg32 rng(41);
    StatAccumulator whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextDouble() * 100 - 50;
        whole.record(v);
        (i < 400 ? left : right).record(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(StatAccumulator, EmptyIsSafe)
{
    StatAccumulator s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Table, AlignsAndPrintsRows)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "12345"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("12345"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Format, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
}

TEST(Format, Percent)
{
    EXPECT_EQ(percent(0.123, 1), "12.3%");
    EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Format, BytesHuman)
{
    EXPECT_EQ(bytesHuman(512), "512B");
    EXPECT_EQ(bytesHuman(64 * 1024), "64KB");
    EXPECT_EQ(bytesHuman(1536 * 1024), "1.5MB");
    EXPECT_EQ(bytesHuman(2 * 1024 * 1024), "2MB");
}

} // namespace
} // namespace spikesim::support
