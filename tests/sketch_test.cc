/**
 * @file
 * Tests for the flight-recorder primitives: the bounded-relative-error
 * quantile sketch (bucket map round-trips, the rank-error bound against
 * an exact sort oracle, shard-merge determinism), timeline ring buffers
 * and their Chrome counter-trace rendering, and SLO burn-rate verdicts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/sketch.hh"
#include "obs/slo.hh"
#include "obs/timeline.hh"
#include "obs/tracing.hh"
#include "support/rng.hh"

namespace spikesim::obs {
namespace {

// ---------------------------------------------------------------- sketch

TEST(Sketch, BucketBoundsRoundTrip)
{
    // Bounds bracket their value and the map is contiguous: each
    // bucket's upper bound is one below the next bucket's lower bound.
    const std::uint64_t probes[] = {
        0,   1,    2,    127,  128,        129,       255,
        256, 1000, 4096, 4097, 1u << 20,   123456789, (1ull << 40) + 17,
        ~0ull};
    for (std::uint64_t v : probes) {
        const std::size_t idx = QuantileSketch::bucketIndex(v);
        EXPECT_LE(QuantileSketch::bucketLowerBound(idx), v);
        EXPECT_GE(QuantileSketch::bucketUpperBound(idx), v);
        EXPECT_EQ(QuantileSketch::bucketIndex(
                      QuantileSketch::bucketLowerBound(idx)),
                  idx);
        EXPECT_EQ(QuantileSketch::bucketIndex(
                      QuantileSketch::bucketUpperBound(idx)),
                  idx);
    }
    for (std::size_t idx = 0; idx < 2000; ++idx)
        EXPECT_EQ(QuantileSketch::bucketLowerBound(idx + 1),
                  QuantileSketch::bucketUpperBound(idx) + 1);
}

TEST(Sketch, SmallValuesAreExact)
{
    // Values below 2^kSubBits get one bucket each, so every quantile of
    // a small-value distribution is the true sample.
    QuantileSketch s;
    for (std::uint64_t v = 0; v < 100; ++v)
        s.record(v);
    EXPECT_EQ(s.quantile(0.0), 0u);
    EXPECT_EQ(s.quantile(0.50), 49u);
    EXPECT_EQ(s.quantile(0.99), 98u);
    EXPECT_EQ(s.quantile(1.0), 99u);
    EXPECT_EQ(s.min(), 0u);
    EXPECT_EQ(s.max(), 99u);
}

/** Exact nearest-rank quantile of a sorted sample vector. */
std::uint64_t
exactQuantile(const std::vector<std::uint64_t>& sorted, double q)
{
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

TEST(Sketch, QuantileTracksSortOracleWithinRelativeError)
{
    // Uniform and heavy-tailed samples: the sketch quantile is always
    // >= the exact nearest-rank sample and within the advertised
    // relative error of it (+1 for integer bucket rounding).
    support::Pcg32 rng(42);
    std::vector<std::uint64_t> uniform, tailed;
    for (int i = 0; i < 20000; ++i) {
        uniform.push_back(rng.nextBounded(1u << 20));
        // Exponentiated uniform: many small values, a long tail.
        tailed.push_back(static_cast<std::uint64_t>(
            std::exp(14.0 * rng.nextDouble())));
    }
    for (std::vector<std::uint64_t>* samples : {&uniform, &tailed}) {
        QuantileSketch s;
        for (std::uint64_t v : *samples)
            s.record(v);
        std::sort(samples->begin(), samples->end());
        ASSERT_EQ(s.count(), samples->size());
        for (double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0}) {
            const std::uint64_t exact = exactQuantile(*samples, q);
            const std::uint64_t est = s.quantile(q);
            EXPECT_GE(est, exact) << "q=" << q;
            EXPECT_LE(est, exact + exact / 128 + 1) << "q=" << q;
        }
        EXPECT_EQ(s.min(), samples->front());
        EXPECT_EQ(s.max(), samples->back());
    }
}

TEST(Sketch, ShardMergeMatchesSingleSketchExactly)
{
    // Splitting a stream across shards and merging (in any shard count)
    // reproduces the single-sketch state bit for bit — the property the
    // serving path's thread-pool determinism rests on.
    support::Pcg32 rng(7);
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 5000; ++i)
        samples.push_back(rng.nextBounded(1u << 24) + 1);

    QuantileSketch whole;
    for (std::uint64_t v : samples)
        whole.record(v);

    for (std::size_t shards : {2u, 3u, 8u}) {
        std::vector<QuantileSketch> parts(shards);
        for (std::size_t i = 0; i < samples.size(); ++i)
            parts[i % shards].record(samples[i]);
        QuantileSketch merged;
        for (const QuantileSketch& p : parts)
            merged.merge(p);
        EXPECT_EQ(merged.buckets(), whole.buckets()) << shards;
        EXPECT_EQ(merged.count(), whole.count());
        EXPECT_EQ(merged.sum(), whole.sum());
        EXPECT_EQ(merged.min(), whole.min());
        EXPECT_EQ(merged.max(), whole.max());
        for (double q : {0.5, 0.99, 0.999})
            EXPECT_EQ(merged.quantile(q), whole.quantile(q));
    }
}

TEST(Sketch, CountAboveUsesBucketBoundary)
{
    QuantileSketch s;
    s.record(100, 10); // exact bucket (v < 128)
    s.record(1000, 5);
    s.record(100000, 3);
    // Threshold inside the 1000-bucket: that bucket itself is not
    // counted, everything strictly above it is.
    EXPECT_EQ(s.countAbove(1000), 3u);
    EXPECT_EQ(s.countAbove(100), 8u);
    EXPECT_EQ(s.countAbove(100000), 0u);
    EXPECT_EQ(s.countAbove(0), 18u);
}

TEST(Sketch, ClearResetsToEmpty)
{
    QuantileSketch s;
    s.record(12345, 7);
    ASSERT_FALSE(s.empty());
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.quantile(0.99), 0u);
    EXPECT_EQ(s.min(), 0u);
    EXPECT_EQ(s.max(), 0u);
}

// -------------------------------------------------------------- timeline

TEST(Timeline, RingEvictsOldestWindows)
{
    Timeline tl(TimelineConfig{"t", 10.0, 1.0, 4});
    const std::size_t a = tl.addSeries("a");
    const std::size_t b = tl.addSeries("b");
    ASSERT_EQ(tl.findSeries("b"), b);
    EXPECT_EQ(tl.findSeries("zzz"), Timeline::npos);

    for (std::size_t w = 0; w < 10; ++w) {
        const double vals[] = {static_cast<double>(w),
                               static_cast<double>(w) * 2.0};
        tl.appendWindow(vals);
    }
    EXPECT_EQ(tl.totalWindows(), 10u);
    EXPECT_EQ(tl.firstWindow(), 6u);
    EXPECT_EQ(tl.evictedWindows(), 6u);
    for (std::size_t w = 6; w < 10; ++w) {
        EXPECT_EQ(tl.value(a, w), static_cast<double>(w));
        EXPECT_EQ(tl.value(b, w), static_cast<double>(w) * 2.0);
    }
}

TEST(Timeline, RenderSectionIsValidJson)
{
    Timeline tl(TimelineConfig{"svc", 100.0, 0.5, 8});
    tl.addSeries("arrivals");
    tl.addSeries("p99_us");
    const double w0[] = {3.0, 12.5};
    const double w1[] = {5.0, 14.25};
    tl.appendWindow(w0);
    tl.appendWindow(w1);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(tl.renderSection(), doc, &err)) << err;
    EXPECT_EQ(doc.find("name")->str(), "svc");
    EXPECT_EQ(doc.find("total_windows")->number(), 2.0);
    EXPECT_EQ(doc.find("first_window")->number(), 0.0);
    const JsonValue* series = doc.find("series");
    ASSERT_NE(series, nullptr);
    ASSERT_NE(series->find("p99_us"), nullptr);
    ASSERT_EQ(series->find("p99_us")->array().size(), 2u);
    EXPECT_EQ(series->find("p99_us")->array()[1].number(), 14.25);
}

TEST(Timeline, CounterTraceMatchesChromeSchema)
{
    // The rendered counter trace is a valid Chrome trace-event document
    // whose events have the golden counter shape: ph "C", per-timeline
    // pid, ts = window start in microseconds, args {"value": sample}.
    Timeline tl(TimelineConfig{"svc", 100.0, 0.5, 8});
    tl.addSeries("arrivals");
    const double w0[] = {3.0};
    const double w1[] = {5.0};
    tl.appendWindow(w0);
    tl.appendWindow(w1);
    const Timeline timelines[] = {tl};

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(renderTimelineTrace(timelines), doc, &err))
        << err;
    ASSERT_TRUE(validateChromeTrace(doc, &err)) << err;

    const auto& events = doc.find("traceEvents")->array();
    ASSERT_EQ(events.size(), 2u);
    const JsonValue& ev = events[1];
    EXPECT_EQ(ev.find("name")->str(), "arrivals");
    EXPECT_EQ(ev.find("cat")->str(), "timeline");
    EXPECT_EQ(ev.find("ph")->str(), "C");
    EXPECT_EQ(ev.find("pid")->number(), 1.0);
    EXPECT_EQ(ev.find("tid")->number(), 0.0);
    // Window 1 starts at 1 * 100 ticks * 0.5 us/tick.
    EXPECT_EQ(ev.find("ts")->number(), 50.0);
    EXPECT_EQ(ev.find("args")->find("value")->number(), 5.0);
}

// ------------------------------------------------------------------- slo

TEST(Slo, EmptyAndAllGoodRunsAreOk)
{
    SloSpec spec;
    spec.target = 0.99;
    const SloVerdict none = evaluateSlo(spec, {});
    EXPECT_EQ(none.verdict, "ok");
    EXPECT_TRUE(none.met);
    EXPECT_EQ(none.attainment, 1.0);

    std::vector<SloWindow> good(60, SloWindow{1000, 0});
    const SloVerdict v = evaluateSlo(spec, good);
    EXPECT_EQ(v.verdict, "ok");
    EXPECT_TRUE(v.met);
    EXPECT_EQ(v.total, 60000u);
    EXPECT_EQ(v.bad, 0u);
    EXPECT_EQ(v.budget_burn, 0.0);
    EXPECT_EQ(v.fast_alert_windows, 0u);
    EXPECT_EQ(v.slow_alert_windows, 0u);
}

TEST(Slo, SustainedMissIsABreach)
{
    SloSpec spec;
    spec.target = 0.99;
    std::vector<SloWindow> windows(12, SloWindow{900, 100});
    const SloVerdict v = evaluateSlo(spec, windows);
    EXPECT_EQ(v.verdict, "breach");
    EXPECT_FALSE(v.met);
    EXPECT_NEAR(v.attainment, 0.9, 1e-12);
    EXPECT_NEAR(v.budget_burn, 10.0, 1e-9);
}

TEST(Slo, BurstFiresTheFastBurnPairOnly)
{
    // 36 healthy windows then 12 bursty ones: the trailing fast pair
    // (3/12 windows) sees a 16.7x burn and alerts at the last window,
    // the run-level budget stays intact, and the slow 48-window span is
    // diluted by the healthy prefix — verdict "fast_burn", still met.
    SloSpec spec;
    spec.target = 0.99;
    std::vector<SloWindow> windows(36, SloWindow{10000, 0});
    for (int i = 0; i < 12; ++i)
        windows.push_back(SloWindow{500, 100});
    const SloVerdict v = evaluateSlo(spec, windows);
    EXPECT_EQ(v.verdict, "fast_burn");
    EXPECT_TRUE(v.met);
    EXPECT_EQ(v.fast_alert_windows, 1u);
    EXPECT_EQ(v.slow_alert_windows, 0u);
    EXPECT_GE(v.max_fast_burn, spec.fast_factor);
}

TEST(Slo, SimmeringLeakFiresTheSlowBurnPair)
{
    // A 7x burn sustained across the whole trailing 48-window span:
    // too mild for the 14.4x fast factor, but the slow pair alerts.
    SloSpec spec;
    spec.target = 0.99;
    std::vector<SloWindow> windows(48, SloWindow{10000, 0});
    for (int i = 0; i < 48; ++i)
        windows.push_back(SloWindow{930, 70});
    const SloVerdict v = evaluateSlo(spec, windows);
    EXPECT_EQ(v.verdict, "slow_burn");
    EXPECT_TRUE(v.met);
    EXPECT_EQ(v.fast_alert_windows, 0u);
    EXPECT_EQ(v.slow_alert_windows, 1u);
    EXPECT_GE(v.max_slow_burn, spec.slow_factor);
    EXPECT_LT(v.max_fast_burn, spec.fast_factor);
}

TEST(Slo, VerdictRendersAsJson)
{
    SloSpec spec;
    spec.name = "latency_p99";
    spec.target = 0.99;
    spec.threshold_ticks = 4000;
    std::vector<SloWindow> windows(12, SloWindow{995, 5});
    const SloVerdict v = evaluateSlo(spec, windows);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(renderSloVerdict(spec, v), doc, &err)) << err;
    EXPECT_EQ(doc.find("name")->str(), "latency_p99");
    EXPECT_EQ(doc.find("target")->number(), 0.99);
    EXPECT_EQ(doc.find("threshold_ticks")->number(), 4000.0);
    EXPECT_EQ(doc.find("total")->number(), 12 * 1000.0);
    EXPECT_EQ(doc.find("bad")->number(), 60.0);
    EXPECT_NEAR(doc.find("attainment")->number(), 0.995, 1e-12);
    ASSERT_NE(doc.find("met"), nullptr);
    EXPECT_EQ(doc.find("met")->boolean(), v.met);
    EXPECT_EQ(doc.find("verdict")->str(), v.verdict);
}

} // namespace
} // namespace spikesim::obs
