/** @file Tests for the synthetic program generator. */

#include <gtest/gtest.h>

#include "synth/synthprog.hh"
#include "synth/walker.hh"
#include "trace/trace.hh"

namespace spikesim::synth {
namespace {

TEST(SynthProg, OracleImageIsValid)
{
    SyntheticProgram sp = buildSyntheticProgram(SynthParams::oracleLike());
    EXPECT_EQ(sp.prog.validate(), "");
    EXPECT_GT(sp.prog.numProcs(), 1000u);
    EXPECT_GT(sp.prog.sizeInstrs() * 4, 400u * 1024); // > 400KB text
}

TEST(SynthProg, KernelImageIsValid)
{
    SyntheticProgram sp = buildSyntheticProgram(SynthParams::kernelLike());
    EXPECT_EQ(sp.prog.validate(), "");
    EXPECT_GT(sp.prog.numProcs(), 300u);
}

TEST(SynthProg, AllDeclaredEntriesExist)
{
    SynthParams params = SynthParams::oracleLike();
    SyntheticProgram sp = buildSyntheticProgram(params);
    for (const EntrySpec& e : params.entries) {
        program::ProcId id = sp.entry(e.name);
        EXPECT_LT(id, sp.prog.numProcs());
        EXPECT_EQ(sp.prog.proc(id).name, e.name);
    }
}

TEST(SynthProg, CallGraphIsADag)
{
    // Generation guarantees callees have strictly larger proc ids, so
    // the call graph cannot contain cycles.
    SyntheticProgram sp = buildSyntheticProgram(SynthParams::oracleLike());
    for (program::ProcId pid = 0; pid < sp.prog.numProcs(); ++pid) {
        for (const auto& blk : sp.prog.proc(pid).blocks) {
            if (blk.term == program::Terminator::Call)
                EXPECT_GT(blk.callee, pid);
        }
    }
}

TEST(SynthProg, DeterministicForSameSeed)
{
    SyntheticProgram a = buildSyntheticProgram(SynthParams::oracleLike(5));
    SyntheticProgram b = buildSyntheticProgram(SynthParams::oracleLike(5));
    ASSERT_EQ(a.prog.numProcs(), b.prog.numProcs());
    ASSERT_EQ(a.prog.numBlocks(), b.prog.numBlocks());
    EXPECT_EQ(a.prog.sizeInstrs(), b.prog.sizeInstrs());
    for (program::GlobalBlockId g = 0; g < a.prog.numBlocks(); g += 97) {
        EXPECT_EQ(a.prog.block(g).sizeInstrs, b.prog.block(g).sizeInstrs);
        EXPECT_EQ(a.prog.block(g).term, b.prog.block(g).term);
    }
}

TEST(SynthProg, DifferentSeedsDiffer)
{
    SyntheticProgram a = buildSyntheticProgram(SynthParams::oracleLike(5));
    SyntheticProgram b = buildSyntheticProgram(SynthParams::oracleLike(6));
    EXPECT_NE(a.prog.sizeInstrs(), b.prog.sizeInstrs());
}

TEST(SynthProg, UnknownEntryIsFatal)
{
    SyntheticProgram sp = buildSyntheticProgram(SynthParams::kernelLike());
    EXPECT_DEATH(sp.entry("no_such_entry"), "unknown entry");
}

/** Parameterized over seeds: every generated image validates and every
 *  entry point walks to completion within its cost envelope. */
class SynthSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SynthSeeds, GeneratesValidWalkableImages)
{
    SynthParams params = SynthParams::oracleLike(GetParam());
    SyntheticProgram sp = buildSyntheticProgram(params);
    ASSERT_EQ(sp.prog.validate(), "");

    CfgWalker walker(sp.prog, trace::ImageId::App, GetParam());
    trace::NullSink sink;
    trace::ExecContext ctx;
    for (const EntrySpec& e : params.entries) {
        std::uint64_t total = 0;
        std::vector<int> hints(
            static_cast<std::size_t>(e.hinted_loops), 3);
        for (int i = 0; i < 20; ++i) {
            WalkStats stats =
                walker.run(sp.entry(e.name), ctx, sink,
                           {hints.data(), hints.size()});
            total += stats.instrs;
        }
        // Mean instructions per invocation stays within a generous
        // multiple of the top-layer budget (walks are stochastic).
        EXPECT_LT(total / 20, 2'000'000u) << e.name;
        EXPECT_GT(total, 0u) << e.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthSeeds,
                         ::testing::Values(1, 2, 3, 17, 42, 1000));

TEST(SynthProg, SubsystemTaggingMatchesNames)
{
    SynthParams params = SynthParams::oracleLike();
    SyntheticProgram sp = buildSyntheticProgram(params);
    ASSERT_EQ(sp.subsystem_of.size(), sp.prog.numProcs());
    // Generated (non-entry) procs are named "<subsystem>_pN".
    for (program::ProcId pid = 0; pid < sp.prog.numProcs(); ++pid) {
        const std::string& name = sp.prog.proc(pid).name;
        const std::string& sub = sp.subsystem_of[pid];
        if (name.find("_p") != std::string::npos)
            EXPECT_EQ(name.rfind(sub, 0), 0u)
                << name << " not in subsystem " << sub;
    }
}

TEST(SynthProg, HintedEntriesHaveHintSlots)
{
    SynthParams params = SynthParams::oracleLike();
    SyntheticProgram sp = buildSyntheticProgram(params);
    for (const EntrySpec& e : params.entries) {
        if (e.hinted_loops == 0)
            continue;
        const program::Procedure& proc = sp.prog.proc(sp.entry(e.name));
        int max_slot = 0;
        for (const auto& blk : proc.blocks)
            max_slot = std::max(max_slot, static_cast<int>(blk.hintSlot));
        EXPECT_EQ(max_slot, e.hinted_loops) << e.name;
    }
}

} // namespace
} // namespace spikesim::synth
