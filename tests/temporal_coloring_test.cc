/** @file Tests for temporal-affinity ordering and cache coloring. */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/coloring.hh"
#include "core/porder.hh"
#include "core/temporal.hh"
#include "program/builder.hh"

namespace spikesim::core {
namespace {

using program::EdgeKind;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

/** N single-block procedures of the given sizes (instrs each). */
Program
procs(std::initializer_list<int> sizes)
{
    Program p("t");
    int i = 0;
    for (int s : sizes) {
        ProcedureBuilder b("p" + std::to_string(i++));
        b.addBlock(static_cast<std::uint32_t>(s), Terminator::Return);
        p.addProcedure(b.build());
    }
    return p;
}

TEST(Temporal, InterleavedProcsGetAffinity)
{
    Program p = procs({4, 4, 4, 4});
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    // Alternate p0/p1 heavily; touch p2/p3 once each far apart.
    for (int i = 0; i < 50; ++i) {
        buf.onBlock(ctx, trace::ImageId::App, p.globalBlockId(0, 0));
        buf.onBlock(ctx, trace::ImageId::App, p.globalBlockId(1, 0));
    }
    buf.onBlock(ctx, trace::ImageId::App, p.globalBlockId(2, 0));
    for (int i = 0; i < 20; ++i)
        buf.onBlock(ctx, trace::ImageId::App, p.globalBlockId(0, 0));
    buf.onBlock(ctx, trace::ImageId::App, p.globalBlockId(3, 0));

    SegmentGraph g = buildTemporalGraph(p, buf);
    EXPECT_EQ(g.num_nodes, 4u);
    std::uint64_t w01 = 0, w23 = 0;
    for (const auto& [a, b, w] : g.edges) {
        if ((a == 0 && b == 1) || (a == 1 && b == 0))
            w01 = w;
        if ((a == 2 && b == 3) || (a == 3 && b == 2))
            w23 = w;
    }
    EXPECT_GT(w01, 50u);
    // p2 and p3 never appear near each other more than the window
    // allows.
    EXPECT_LE(w23, 2u);

    // Ordering places the interleaved pair adjacently.
    std::vector<std::uint32_t> order =
        pettisHansenOrder(g.num_nodes, g.edges);
    std::size_t pos[4];
    for (std::size_t i = 0; i < 4; ++i)
        pos[order[i]] = i;
    EXPECT_EQ(std::max(pos[0], pos[1]) - std::min(pos[0], pos[1]), 1u);
}

TEST(Temporal, WindowBoundsAffinityDistance)
{
    Program p = procs({2, 2, 2});
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    // Sequence p0, p1, p2 repeatedly; with window 1 only adjacent
    // pairs earn weight.
    for (int i = 0; i < 30; ++i)
        for (program::ProcId q = 0; q < 3; ++q)
            buf.onBlock(ctx, trace::ImageId::App,
                        p.globalBlockId(q, 0));
    TemporalOptions opts;
    opts.window = 1;
    SegmentGraph g = buildTemporalGraph(p, buf, opts);
    std::uint64_t w02 = 0, w01 = 0;
    for (const auto& [a, b, w] : g.edges) {
        if ((a == 0 && b == 2) || (a == 2 && b == 0))
            w02 = w;
        if ((a == 0 && b == 1) || (a == 1 && b == 0))
            w01 = w;
    }
    EXPECT_GT(w01, 0u);
    // p0 and p2 are two activations apart: outside a window of 1,
    // except for the wrap-around (p2 then p0 of the next iteration).
    EXPECT_GT(w01, w02);
}

TEST(Temporal, KernelEventsIgnoredByDefault)
{
    Program p = procs({2, 2});
    trace::TraceBuffer buf;
    trace::ExecContext ctx;
    buf.onBlock(ctx, trace::ImageId::Kernel, p.globalBlockId(0, 0));
    buf.onBlock(ctx, trace::ImageId::Kernel, p.globalBlockId(1, 0));
    SegmentGraph g = buildTemporalGraph(p, buf);
    EXPECT_TRUE(g.edges.empty());
}

TEST(Coloring, HotProcsPackIntoRows)
{
    // Four procs of 8 instrs (32 bytes); cache of 64 bytes -> rows of
    // two procs.
    Program p = procs({8, 8, 8, 8});
    profile::Profile prof(p);
    prof.addBlock(p.globalBlockId(2, 0), 100); // hottest
    prof.addBlock(p.globalBlockId(0, 0), 50);
    prof.addBlock(p.globalBlockId(3, 0), 10);
    // p1 cold.
    ColoringOptions opts;
    opts.target = {64, 32, 1};
    auto segs = colorOrderProcedures(p, prof, opts);
    ASSERT_EQ(segs.size(), 4u);
    // Hottest first.
    EXPECT_EQ(segs[0].proc, 2u);
    EXPECT_EQ(segs[1].proc, 0u);
    EXPECT_EQ(segs[2].proc, 3u);
    // Cold last.
    EXPECT_EQ(segs[3].proc, 1u);
}

TEST(Coloring, ColdProcsKeepOriginalOrder)
{
    Program p = procs({4, 4, 4, 4, 4});
    profile::Profile prof(p);
    prof.addBlock(p.globalBlockId(4, 0), 5);
    auto segs = colorOrderProcedures(p, prof, {});
    ASSERT_EQ(segs.size(), 5u);
    EXPECT_EQ(segs[0].proc, 4u);
    for (std::size_t i = 1; i < 5; ++i)
        EXPECT_EQ(segs[i].proc, i - 1);
}

TEST(Coloring, SegmentsVariantCoversAllBlocks)
{
    Program p = procs({6, 6});
    profile::Profile prof(p);
    prof.addBlock(0, 3);
    std::vector<CodeSegment> segs;
    segs.push_back({0, {0}});
    segs.push_back({1, {0}});
    auto out = colorOrderSegments(p, prof, std::move(segs), {});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].proc, 0u); // the hot one leads
}

} // namespace
} // namespace spikesim::core
