/** @file Tests for Pettis-Hansen ordering (paper section 2, Figure 2). */

#include <gtest/gtest.h>

#include "core/porder.hh"
#include "support/rng.hh"

namespace spikesim::core {
namespace {

using Edges =
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>>;

TEST(PettisHansen, ReproducesThePapersFigure2)
{
    // Nodes A=0, B=1, C=2, D=3, E=4. Weights chosen so the merge
    // sequence follows the paper's example: A-C (10) first, then B-D
    // (8), then (B,D)+(A,C) joined at the B~A seam (7) giving
    // D,B,A,C, and finally E attaches at the E~D seam (4):
    // E,D,B,A,C.
    Edges edges{
        {0, 2, 10}, // A-C
        {1, 3, 8},  // B-D
        {1, 0, 7},  // B-A
        {3, 0, 2},  // D-A
        {1, 2, 1},  // B-C
        {4, 3, 4},  // E-D
        {4, 2, 1},  // E-C
    };
    std::vector<std::uint32_t> order = pettisHansenOrder(5, edges);
    std::vector<std::uint32_t> expected{4, 3, 1, 0, 2}; // E,D,B,A,C
    std::vector<std::uint32_t> mirrored(expected.rbegin(),
                                        expected.rend());
    // A reversed chain has identical adjacency structure; accept the
    // paper's order or its mirror (which orientation wins depends on
    // which endpoint the implementation merges into).
    EXPECT_TRUE(order == expected || order == mirrored)
        << "got " << ::testing::PrintToString(order);
}

TEST(PettisHansen, HeaviestEdgeEndsUpAdjacent)
{
    Edges edges{{0, 1, 100}, {2, 3, 1}};
    std::vector<std::uint32_t> order = pettisHansenOrder(4, edges);
    ASSERT_EQ(order.size(), 4u);
    // 0 and 1 must be adjacent.
    std::size_t i0 = 0, i1 = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        if (order[i] == 0)
            i0 = i;
        if (order[i] == 1)
            i1 = i;
    }
    EXPECT_EQ(std::max(i0, i1) - std::min(i0, i1), 1u);
}

TEST(PettisHansen, OppositeDirectionEdgesCombine)
{
    // 0->1 and 1->0 sum to 6, beating 0-2's 5.
    Edges edges{{0, 1, 3}, {1, 0, 3}, {0, 2, 5}};
    std::vector<std::uint32_t> order = pettisHansenOrder(3, edges);
    std::size_t pos[3];
    for (std::size_t i = 0; i < 3; ++i)
        pos[order[i]] = i;
    EXPECT_EQ(std::max(pos[0], pos[1]) - std::min(pos[0], pos[1]), 1u);
}

TEST(PettisHansen, UnconnectedNodesKeepOriginalOrderAtEnd)
{
    Edges edges{{5, 6, 9}};
    std::vector<std::uint32_t> order = pettisHansenOrder(8, edges);
    ASSERT_EQ(order.size(), 8u);
    // Connected component first.
    EXPECT_TRUE((order[0] == 5 && order[1] == 6) ||
                (order[0] == 6 && order[1] == 5));
    // The cold singletons follow in their original relative order.
    std::vector<std::uint32_t> tail(order.begin() + 2, order.end());
    std::vector<std::uint32_t> expected{0, 1, 2, 3, 4, 7};
    EXPECT_EQ(tail, expected);
}

TEST(PettisHansen, EmptyGraphIsIdentity)
{
    std::vector<std::uint32_t> order = pettisHansenOrder(4, {});
    std::vector<std::uint32_t> expected{0, 1, 2, 3};
    EXPECT_EQ(order, expected);
}

TEST(PettisHansen, SelfEdgesAreIgnored)
{
    Edges edges{{0, 0, 1000}, {1, 2, 1}};
    std::vector<std::uint32_t> order = pettisHansenOrder(3, edges);
    ASSERT_EQ(order.size(), 3u);
}

TEST(PettisHansen, HeavierComponentsComeFirst)
{
    Edges edges{{0, 1, 2}, {2, 3, 50}};
    std::vector<std::uint32_t> order = pettisHansenOrder(4, edges);
    // The {2,3} component (weight 50) leads.
    EXPECT_TRUE(order[0] == 2 || order[0] == 3);
}

TEST(PettisHansen, Deterministic)
{
    support::Pcg32 rng(77);
    Edges edges;
    for (int i = 0; i < 200; ++i)
        edges.emplace_back(rng.nextBounded(40), rng.nextBounded(40),
                           1 + rng.nextBounded(100));
    auto a = pettisHansenOrder(40, edges);
    auto b = pettisHansenOrder(40, edges);
    EXPECT_EQ(a, b);
}

/** Property sweep over random graphs. */
class PorderProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PorderProperty, ProducesAPermutation)
{
    support::Pcg32 rng(GetParam());
    std::size_t n = 10 + rng.nextBounded(200);
    Edges edges;
    std::size_t m = rng.nextBounded(600);
    for (std::size_t i = 0; i < m; ++i)
        edges.emplace_back(
            rng.nextBounded(static_cast<std::uint32_t>(n)),
            rng.nextBounded(static_cast<std::uint32_t>(n)),
            rng.nextBounded(1000));
    std::vector<std::uint32_t> order =
        pettisHansenOrder(n, edges);
    ASSERT_EQ(order.size(), n);
    std::vector<bool> seen(n, false);
    for (std::uint32_t u : order) {
        ASSERT_LT(u, n);
        ASSERT_FALSE(seen[u]);
        seen[u] = true;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PorderProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace spikesim::core
