/** @file Tests for the TPC-B workload driver. */

#include <gtest/gtest.h>

#include "db/tpcb.hh"

namespace spikesim::db {
namespace {

TpcbConfig
smallConfig(std::uint64_t seed = 7)
{
    TpcbConfig c;
    c.branches = 5;
    c.tellers_per_branch = 10;
    c.accounts_per_branch = 200;
    c.buffer_frames = 64;
    c.seed = seed;
    return c;
}

TEST(Tpcb, SetupPopulatesSchema)
{
    TpcbDatabase db(smallConfig());
    db.setup();
    EXPECT_EQ(db.numAccounts(), 1000);
    EXPECT_EQ(db.numTellers(), 50);
    EXPECT_EQ(db.accountIndex().numEntries(), 1000u);
    EXPECT_EQ(db.accountIndex().check(), "");
    EXPECT_EQ(db.verify(), "");
}

TEST(Tpcb, TransactionsConserveBalances)
{
    TpcbDatabase db(smallConfig());
    db.setup();
    for (int i = 0; i < 500; ++i)
        db.runTransaction(static_cast<std::uint16_t>(i % 4));
    EXPECT_EQ(db.verify(), "");
    EXPECT_EQ(db.history().numRows(), 500u);
    EXPECT_EQ(db.txns().numCommitted(), 501u); // setup txn + 500
    EXPECT_EQ(db.txns().numActive(), 0u);
}

TEST(Tpcb, OutcomesAreWithinDomain)
{
    TpcbDatabase db(smallConfig());
    db.setup();
    int remote = 0;
    for (int i = 0; i < 2000; ++i) {
        TpcbOutcome out = db.runTransaction(0);
        EXPECT_GE(out.account, 0);
        EXPECT_LT(out.account, db.numAccounts());
        EXPECT_GE(out.teller, 0);
        EXPECT_LT(out.teller, db.numTellers());
        EXPECT_EQ(out.teller / 10, out.branch);
        std::int64_t account_branch = out.account / 200;
        remote += account_branch != out.branch ? 1 : 0;
    }
    // ~15% remote-branch accounts.
    EXPECT_NEAR(remote / 2000.0, 0.15, 0.04);
}

TEST(Tpcb, GroupCommitBatchesFlushes)
{
    TpcbConfig c = smallConfig();
    c.wal.group_commit_batch = 4;
    TpcbDatabase db(c);
    db.setup();
    for (int i = 0; i < 400; ++i)
        db.runTransaction(0);
    // Roughly one flush per 4 commits (plus threshold flushes).
    EXPECT_GE(db.wal().flushes(), 100u);
    EXPECT_LE(db.wal().flushes(), 220u);
}

TEST(Tpcb, HotBranchContentionTriggersWaits)
{
    TpcbConfig c = smallConfig();
    c.branches = 2; // two branches: constant re-hits
    c.contention_window = 8;
    TpcbDatabase db(c);
    db.setup();
    int waits = 0;
    for (int i = 0; i < 300; ++i)
        waits += db.runTransaction(0).lock_waited ? 1 : 0;
    EXPECT_GT(waits, 200); // nearly every txn re-touches a hot branch
}

TEST(Tpcb, WideScaleHasFewerWaits)
{
    TpcbConfig c = smallConfig();
    c.branches = 64;
    c.accounts_per_branch = 50;
    c.contention_window = 2;
    TpcbDatabase db(c);
    db.setup();
    int waits = 0;
    for (int i = 0; i < 300; ++i)
        waits += db.runTransaction(0).lock_waited ? 1 : 0;
    EXPECT_LT(waits, 100);
}

TEST(Tpcb, DeterministicForSameSeed)
{
    TpcbDatabase a(smallConfig(11)), b(smallConfig(11));
    a.setup();
    b.setup();
    for (int i = 0; i < 100; ++i) {
        TpcbOutcome oa = a.runTransaction(0);
        TpcbOutcome ob = b.runTransaction(0);
        EXPECT_EQ(oa.account, ob.account);
        EXPECT_EQ(oa.delta, ob.delta);
    }
}

class TpcbCrash : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TpcbCrash, RecoveryRestoresConsistency)
{
    TpcbDatabase db(smallConfig(GetParam()));
    db.setup();
    for (int i = 0; i < 150; ++i)
        db.runTransaction(static_cast<std::uint16_t>(i % 3));
    std::uint64_t committed_before = db.wal().commits();
    (void)committed_before;
    db.crash();
    RecoveryResult res = db.recover();
    EXPECT_GT(res.records_redone, 0u);
    // All *durable* transactions are replayed consistently: balances
    // still conserve (losers vanish atomically).
    EXPECT_EQ(db.verify(), "");
    EXPECT_EQ(db.accountIndex().check(), "");
    // The database keeps working after recovery.
    for (int i = 0; i < 50; ++i)
        db.runTransaction(0);
    EXPECT_EQ(db.verify(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TpcbCrash,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Tpcb, CheckpointThenCrashLosesNothing)
{
    TpcbDatabase db(smallConfig());
    db.setup();
    for (int i = 0; i < 100; ++i)
        db.runTransaction(0);
    db.checkpoint();
    std::uint64_t rows = db.history().numRows();
    db.crash();
    db.recover();
    EXPECT_EQ(db.history().numRows(), rows);
    EXPECT_EQ(db.verify(), "");
}

TEST(Tpcb, HooksSeeTheTransactionOps)
{
    struct Names : EngineHooks
    {
        std::vector<std::string> ops;
        std::vector<std::string> syscalls;
        int data = 0;
        void
        onOp(const char* entry, std::span<const int>) override
        {
            ops.emplace_back(entry);
        }
        void
        onSyscall(const char* entry, std::span<const int>) override
        {
            syscalls.emplace_back(entry);
        }
        void
        onData(std::uint64_t) override
        {
            ++data;
        }
    } hooks;
    TpcbDatabase db(smallConfig(), &hooks);
    db.setup();
    hooks.ops.clear();
    hooks.syscalls.clear();
    db.runTransaction(3);
    auto count = [&](const std::vector<std::string>& v,
                     const std::string& name) {
        return std::count(v.begin(), v.end(), name);
    };
    EXPECT_EQ(count(hooks.ops, "net_recv"), 1);
    EXPECT_EQ(count(hooks.ops, "net_reply"), 1);
    EXPECT_EQ(count(hooks.ops, "txn_begin"), 1);
    EXPECT_EQ(count(hooks.ops, "txn_commit"), 1);
    EXPECT_EQ(count(hooks.ops, "sql_exec_update"), 3);
    EXPECT_EQ(count(hooks.ops, "sql_exec_insert"), 1);
    EXPECT_EQ(count(hooks.ops, "btree_search"), 3);
    EXPECT_EQ(count(hooks.ops, "heap_update"), 3);
    EXPECT_EQ(count(hooks.ops, "heap_insert"), 1);
    EXPECT_EQ(count(hooks.syscalls, "sys_ipc"), 2);
    EXPECT_GT(hooks.data, 0);
    // Exactly one of log_flush / log_wait per commit.
    EXPECT_EQ(count(hooks.ops, "log_flush") +
                  count(hooks.ops, "log_wait"),
              1);
}

} // namespace
} // namespace spikesim::db
