/**
 * @file
 * Tests for the observability layer: registry counters/gauges/
 * histograms under concurrency, RAII span tracing and the Chrome
 * trace-event schema, the JSON round-trip, and run manifests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/registry.hh"
#include "obs/tracing.hh"

namespace spikesim::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, ParsesAndRoundTripsDocuments)
{
    const std::string text =
        R"({"a":[1,2.5,-3],"b":{"s":"hi\n\"x\"","t":true,"n":null},)"
        R"("big":9007199254740992})";
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(text, doc, &err)) << err;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("a")->array().size(), 3u);
    EXPECT_DOUBLE_EQ(doc.find("a")->array()[1].number(), 2.5);
    EXPECT_EQ(doc.find("b")->find("s")->str(), "hi\n\"x\"");
    EXPECT_TRUE(doc.find("b")->find("t")->boolean());
    EXPECT_TRUE(doc.find("b")->find("n")->isNull());

    JsonValue again;
    ASSERT_TRUE(parseJson(doc.dump(), again, &err)) << err;
    EXPECT_TRUE(again == doc);
}

TEST(Json, RejectsMalformedInput)
{
    JsonValue v;
    EXPECT_FALSE(parseJson("", v));
    EXPECT_FALSE(parseJson("{", v));
    EXPECT_FALSE(parseJson("[1,]", v));
    EXPECT_FALSE(parseJson("{\"a\":1} trailing", v));
    EXPECT_FALSE(parseJson("'single'", v));
    EXPECT_FALSE(parseJson("{\"a\" 1}", v));
}

TEST(Json, NumberFormatterIsLossless)
{
    for (double v : {0.0, 1.0, -17.0, 0.125, 1e-9, 123456789.25,
                     9007199254740991.0}) {
        JsonValue parsed;
        ASSERT_TRUE(parseJson(jsonNumber(v), parsed));
        EXPECT_EQ(parsed.number(), v) << jsonNumber(v);
    }
}

// ------------------------------------------------------------ registry

TEST(Registry, SameNameReturnsSameMetric)
{
    Counter& a = counter("test.obs.same_name");
    Counter& b = counter("test.obs.same_name");
    EXPECT_EQ(&a, &b);
}

TEST(Registry, ConcurrentCounterHammeringSumsExactly)
{
    Counter& c = counter("test.obs.hammer");
    c.reset();
    constexpr int kThreads = 8;
    constexpr std::uint64_t kIncrements = 100000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kIncrements; ++i)
                c.add(1);
        });
    for (std::thread& t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kIncrements);
}

TEST(Registry, GaugeMaxIsMonotone)
{
    Gauge& g = gauge("test.obs.gauge_max");
    g.reset();
    g.max(5);
    g.max(3);
    EXPECT_EQ(g.value(), 5);
    g.max(9);
    EXPECT_EQ(g.value(), 9);

    std::vector<std::thread> threads;
    for (int t = 1; t <= 8; ++t)
        threads.emplace_back([&g, t] {
            for (int i = 0; i < 1000; ++i)
                g.max(t * 1000 + i);
        });
    for (std::thread& t : threads)
        t.join();
    EXPECT_EQ(g.value(), 8999);
}

TEST(Registry, HistogramMergesShardsCorrectly)
{
    Histogram& h = histogram("test.obs.hist_merge");
    h.reset();
    // 8 threads each record the same set of values; shards must merge
    // to exactly 8x the single-thread bucket counts.
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&h] {
            for (int i = 0; i < 100; ++i) {
                h.record(1);   // bucket 0
                h.record(2);   // bucket 1
                h.record(3);   // bucket 1
                h.record(700); // bucket 9
            }
        });
    for (std::thread& t : threads)
        t.join();
    const support::Log2Histogram snap = h.snapshot();
    EXPECT_EQ(h.totalSamples(), kThreads * 400u);
    EXPECT_EQ(snap.totalSamples(), kThreads * 400u);
    EXPECT_EQ(snap.bucket(0), kThreads * 100u);
    EXPECT_EQ(snap.bucket(1), kThreads * 200u);
    EXPECT_EQ(snap.bucket(9), kThreads * 100u);
}

TEST(Registry, SnapshotCarriesRegisteredNames)
{
    counter("test.obs.snap_counter").add(7);
    gauge("test.obs.snap_gauge").set(-3);
    histogram("test.obs.snap_hist").record(16);
    const Snapshot snap = Registry::instance().snapshot();
    auto has = [](const auto& vec, const char* name) {
        for (const auto& [n, v] : vec)
            if (n == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has(snap.counters, "test.obs.snap_counter"));
    EXPECT_TRUE(has(snap.gauges, "test.obs.snap_gauge"));
    EXPECT_TRUE(has(snap.histograms, "test.obs.snap_hist"));
}

TEST(Registry, NullCounterStaysZero)
{
    NullCounter c;
    c.add(41);
    c.add();
    EXPECT_EQ(c.value(), 0u);
}

// ------------------------------------------------------------- tracing

/** Find the first event with the given name, or nullptr. */
const JsonValue*
findEvent(const JsonValue& doc, const std::string& name)
{
    for (const JsonValue& e : doc.find("traceEvents")->array())
        if (e.find("name") != nullptr && e.find("name")->str() == name)
            return &e;
    return nullptr;
}

TEST(Tracing, SpansAreFreeWhenInactive)
{
    ASSERT_FALSE(tracingActive());
    {
        Span span("test.inactive", "test");
    }
    startTracing();
    const std::string json = stopTracingToString();
    JsonValue doc;
    ASSERT_TRUE(parseJson(json, doc));
    EXPECT_EQ(findEvent(doc, "test.inactive"), nullptr);
}

TEST(Tracing, NestedSpansEmitOrderedCompleteEvents)
{
    startTracing();
    {
        Span outer("test.outer", "test");
        {
            Span inner("test.inner", "test");
        }
        {
            Span second("test.second", "test");
        }
    }
    const std::string json = stopTracingToString();
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(json, doc, &err)) << err;
    ASSERT_TRUE(validateChromeTrace(doc, &err)) << err;

    const JsonValue* outer = findEvent(doc, "test.outer");
    const JsonValue* inner = findEvent(doc, "test.inner");
    const JsonValue* second = findEvent(doc, "test.second");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(second, nullptr);

    // Nesting: the outer span contains both children in time, and all
    // three ran on the same thread.
    const double ots = outer->find("ts")->number();
    const double odur = outer->find("dur")->number();
    const double its = inner->find("ts")->number();
    const double idur = inner->find("dur")->number();
    const double sts = second->find("ts")->number();
    EXPECT_LE(ots, its);
    EXPECT_GE(ots + odur, its + idur);
    EXPECT_LE(its + idur, sts); // inner closed before second opened
    EXPECT_EQ(outer->find("tid")->number(),
              inner->find("tid")->number());
    EXPECT_EQ(outer->find("tid")->number(),
              second->find("tid")->number());
}

TEST(Tracing, EventsMatchChromeTraceSchemaGolden)
{
    startTracing();
    {
        Span span("test.golden", "test");
    }
    const std::string json = stopTracingToString();
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(json, doc, &err)) << err;

    // Golden schema: exactly the keys Perfetto/chrome://tracing expect
    // on a complete event, with the right types.
    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.find("traceEvents"), nullptr);
    ASSERT_TRUE(doc.find("traceEvents")->isArray());
    const JsonValue* ev = findEvent(doc, "test.golden");
    ASSERT_NE(ev, nullptr);
    for (const char* key : {"name", "cat", "ph", "pid", "tid", "ts",
                            "dur"})
        ASSERT_NE(ev->find(key), nullptr) << "missing key " << key;
    EXPECT_EQ(ev->find("ph")->str(), "X");
    EXPECT_EQ(ev->find("cat")->str(), "test");
    EXPECT_TRUE(ev->find("pid")->isNumber());
    EXPECT_TRUE(ev->find("tid")->isNumber());
    EXPECT_GE(ev->find("ts")->number(), 0.0);
    EXPECT_GE(ev->find("dur")->number(), 0.0);
    ASSERT_TRUE(validateChromeTrace(doc, &err)) << err;
}

TEST(Tracing, ValidatorRejectsBrokenDocuments)
{
    std::string err;
    auto parse = [](const char* text) {
        JsonValue v;
        EXPECT_TRUE(parseJson(text, v));
        return v;
    };
    // Not an object / missing traceEvents.
    EXPECT_FALSE(validateChromeTrace(parse("[]"), &err));
    EXPECT_FALSE(validateChromeTrace(parse("{}"), &err));
    // X event without dur.
    EXPECT_FALSE(validateChromeTrace(
        parse(R"({"traceEvents":[{"name":"a","cat":"c","ph":"X",)"
              R"("pid":1,"tid":1,"ts":0}]})"),
        &err));
    // Unbalanced B without E.
    EXPECT_FALSE(validateChromeTrace(
        parse(R"({"traceEvents":[{"name":"a","cat":"c","ph":"B",)"
              R"("pid":1,"tid":1,"ts":0}]})"),
        &err));
    // Balanced B/E is fine.
    EXPECT_TRUE(validateChromeTrace(
        parse(R"({"traceEvents":[)"
              R"({"name":"a","cat":"c","ph":"B","pid":1,"tid":1,"ts":0},)"
              R"({"name":"a","cat":"c","ph":"E","pid":1,"tid":1,"ts":5})"
              R"(]})"),
        &err))
        << err;
    // Counter events: args object with numeric series required.
    EXPECT_FALSE(validateChromeTrace(
        parse(R"({"traceEvents":[{"name":"a","cat":"c","ph":"C",)"
              R"("pid":1,"tid":0,"ts":0}]})"),
        &err));
    EXPECT_FALSE(validateChromeTrace(
        parse(R"({"traceEvents":[{"name":"a","cat":"c","ph":"C",)"
              R"("pid":1,"tid":0,"ts":0,"args":{}}]})"),
        &err));
    EXPECT_FALSE(validateChromeTrace(
        parse(R"({"traceEvents":[{"name":"a","cat":"c","ph":"C",)"
              R"("pid":1,"tid":0,"ts":0,"args":{"v":"nope"}}]})"),
        &err));
    EXPECT_TRUE(validateChromeTrace(
        parse(R"({"traceEvents":[{"name":"a","cat":"c","ph":"C",)"
              R"("pid":1,"tid":0,"ts":0,"args":{"value":3.5}}]})"),
        &err))
        << err;
}

TEST(Tracing, ConcurrentSpansAllSurviveToTheTrace)
{
    startTracing();
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                Span span("test.concurrent", "test");
            }
        });
    for (std::thread& t : threads)
        t.join();
    const std::string json = stopTracingToString();
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(json, doc, &err)) << err;
    ASSERT_TRUE(validateChromeTrace(doc, &err)) << err;
    int found = 0;
    for (const JsonValue& e : doc.find("traceEvents")->array())
        found += e.find("name")->str() == "test.concurrent";
    EXPECT_EQ(found, kThreads * kSpansPerThread);
}

TEST(Tracing, InternNameDeduplicatesAndStaysStable)
{
    const char* a = internName("test.dynamic.name");
    const char* b = internName(std::string("test.dynamic") + ".name");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "test.dynamic.name");
}

// ------------------------------------------------------------ manifest

TEST(Manifest, RendersAllSectionsAsValidJson)
{
    counter("test.obs.manifest_counter").add(3);
    Manifest m;
    m.binary = "unit_test";
    m.args = {"--alpha", "7"};
    m.seed = 42;
    m.threads = 4;
    m.info.emplace_back("key", "value");
    m.phases.push_back({"phase_one", 1.5, 1.25});
    m.artifacts.push_back({"BENCH_x.json", R"({"bench":"x","n":1})"});
    m.artifacts.push_back({"broken.json", "not json"});

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(renderManifest(m), doc, &err)) << err;
    EXPECT_EQ(doc.find("spikesim_manifest")->number(), 1.0);
    EXPECT_EQ(doc.find("binary")->str(), "unit_test");
    EXPECT_EQ(doc.find("args")->array().size(), 2u);
    EXPECT_EQ(doc.find("seed")->number(), 42.0);
    EXPECT_EQ(doc.find("threads")->number(), 4.0);
    EXPECT_EQ(doc.find("info")->find("key")->str(), "value");

    const JsonValue& phase = doc.find("phases")->array().at(0);
    EXPECT_EQ(phase.find("name")->str(), "phase_one");
    EXPECT_DOUBLE_EQ(phase.find("wall_s")->number(), 1.5);
    EXPECT_DOUBLE_EQ(phase.find("cpu_s")->number(), 1.25);

    // A valid artifact embeds verbatim; a broken one degrades to null
    // rather than corrupting the manifest.
    const JsonValue* good = doc.find("artifacts")->find("BENCH_x.json");
    ASSERT_NE(good, nullptr);
    EXPECT_EQ(good->find("bench")->str(), "x");
    const JsonValue* bad = doc.find("artifacts")->find("broken.json");
    ASSERT_NE(bad, nullptr);
    EXPECT_TRUE(bad->isNull());

    // The final registry snapshot rides along.
    const JsonValue* counters = doc.find("metrics")->find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("test.obs.manifest_counter"), nullptr);
    EXPECT_GE(counters->find("test.obs.manifest_counter")->number(),
              3.0);
}

TEST(Manifest, TimelineAndSloSectionsEmbedOrDegrade)
{
    sketch("test.obs.manifest_sketch").record(1000);
    Manifest m;
    m.binary = "unit_test";
    m.timelines.push_back(
        R"({"name":"tl","total_windows":2,"series":{"x":[1,2]}})");
    m.timelines.push_back("definitely not json");
    m.slos.push_back(
        R"({"name":"latency","verdict":"ok","attainment":0.995})");

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(renderManifest(m), doc, &err)) << err;

    const JsonValue* timelines = doc.find("timeline");
    ASSERT_NE(timelines, nullptr);
    ASSERT_TRUE(timelines->isArray());
    ASSERT_EQ(timelines->array().size(), 2u);
    EXPECT_EQ(timelines->array()[0].find("name")->str(), "tl");
    // Malformed sections degrade to null like artifacts.
    EXPECT_TRUE(timelines->array()[1].isNull());

    const JsonValue* slos = doc.find("slo");
    ASSERT_NE(slos, nullptr);
    ASSERT_TRUE(slos->isArray());
    ASSERT_EQ(slos->array().size(), 1u);
    EXPECT_EQ(slos->array()[0].find("verdict")->str(), "ok");

    // Sketch metrics ride in the snapshot with quantile summaries.
    const JsonValue* metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    const JsonValue* sketches = metrics->find("sketches");
    ASSERT_NE(sketches, nullptr);
    const JsonValue* s = sketches->find("test.obs.manifest_sketch");
    ASSERT_NE(s, nullptr);
    EXPECT_GE(s->find("count")->number(), 1.0);
    for (const char* key : {"sum", "min", "max", "p50", "p90", "p99",
                            "p999", "relative_error"})
        ASSERT_NE(s->find(key), nullptr) << "missing key " << key;
}

TEST(Manifest, PhaseClockRecordsWallTime)
{
    Manifest m;
    {
        PhaseClock clock(m, "timed_phase");
        std::atomic<std::uint64_t> spin{0};
        for (int i = 0; i < 200000; ++i)
            spin.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(m.phases.size(), 1u);
    EXPECT_EQ(m.phases[0].name, "timed_phase");
    EXPECT_GE(m.phases[0].wall_s, 0.0);
    EXPECT_GE(m.phases[0].cpu_s, 0.0);
}

} // namespace
} // namespace spikesim::obs
