/** @file Tests for fine-grain and hot/cold procedure splitting. */

#include <gtest/gtest.h>

#include <numeric>

#include "core/chain.hh"
#include "core/split.hh"
#include "program/builder.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"

namespace spikesim::core {
namespace {

using program::BlockLocalId;
using program::EdgeKind;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

/** Entry -> cond -> {then: uncond to ret} {else: fallthrough to ret}. */
Program
diamond()
{
    Program p("d");
    ProcedureBuilder b("p");
    auto e = b.addBlock(1, Terminator::CondBranch);   // 0
    auto t = b.addBlock(1, Terminator::UncondBranch); // 1
    auto f = b.addBlock(1, Terminator::FallThrough);  // 2
    auto r = b.addBlock(1, Terminator::Return);       // 3
    b.addCond(e, t, f, 0.5);
    b.addEdge(t, r, EdgeKind::UncondTarget);
    b.addEdge(f, r, EdgeKind::FallThrough);
    p.addProcedure(b.build());
    EXPECT_EQ(p.validate(), "");
    return p;
}

TEST(FineGrainSplit, CutsAtUnconditionalTransfers)
{
    Program p = diamond();
    // Natural order 0,1,2,3:
    //   0 (cond, fall 2 non-adjacent? next is 1 = taken) -> no cut
    //   1 (uncond to 3, next is 2)                       -> cut
    //   2 (fallthrough to 3, adjacent)                   -> no cut
    //   3 (return)                                       -> cut
    std::vector<BlockLocalId> order{0, 1, 2, 3};
    auto segs = splitFineGrain(p, 0, order);
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_EQ(segs[0].blocks, (std::vector<BlockLocalId>{0, 1}));
    EXPECT_EQ(segs[1].blocks, (std::vector<BlockLocalId>{2, 3}));
}

TEST(FineGrainSplit, AdjacentUncondTargetIsNotACut)
{
    Program p = diamond();
    // Order 0,2,1,3: 0 falls to 2 (adjacent), 2 falls to 3 (not next:
    // cut after 2), 1's uncond target 3 is adjacent -> merged, 3 ret.
    std::vector<BlockLocalId> order{0, 2, 1, 3};
    auto segs = splitFineGrain(p, 0, order);
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_EQ(segs[0].blocks, (std::vector<BlockLocalId>{0, 2}));
    EXPECT_EQ(segs[1].blocks, (std::vector<BlockLocalId>{1, 3}));
}

TEST(FineGrainSplit, ConcatenationPreservesOrder)
{
    Program p = diamond();
    std::vector<BlockLocalId> order{3, 1, 0, 2};
    auto segs = splitFineGrain(p, 0, order);
    std::vector<BlockLocalId> cat;
    for (const auto& s : segs) {
        EXPECT_EQ(s.proc, 0u);
        EXPECT_FALSE(s.blocks.empty());
        cat.insert(cat.end(), s.blocks.begin(), s.blocks.end());
    }
    EXPECT_EQ(cat, order);
}

TEST(FineGrainSplit, EverySegmentEndsUnconditionally)
{
    synth::SyntheticProgram sp = synth::buildSyntheticProgram(
        synth::SynthParams::kernelLike(9));
    profile::Profile prof(sp.prog); // empty profile: natural chains
    for (program::ProcId pid = 0; pid < sp.prog.numProcs(); pid += 13) {
        auto order = chainBasicBlocks(sp.prog, pid, prof);
        auto segs = splitFineGrain(sp.prog, pid, order);
        const auto& proc = sp.prog.proc(pid);
        std::size_t total = 0;
        for (const auto& s : segs)
            total += s.blocks.size();
        EXPECT_EQ(total, proc.blocks.size());
        // No segment may have an internal unconditional-transfer block
        // whose next block in the segment is unreachable by fall-through.
        for (const auto& s : segs) {
            for (std::size_t i = 0; i + 1 < s.blocks.size(); ++i) {
                Terminator t = proc.blocks[s.blocks[i]].term;
                EXPECT_NE(t, Terminator::Return);
                EXPECT_NE(t, Terminator::IndirectJump);
            }
        }
    }
}

TEST(HotColdSplit, PartitionsByCount)
{
    Program p = diamond();
    profile::Profile prof(p);
    prof.addBlock(0, 10);
    prof.addBlock(2, 10);
    prof.addBlock(3, 10); // blocks 0,2,3 hot; block 1 cold
    std::vector<BlockLocalId> order{0, 1, 2, 3};
    auto segs = splitHotCold(p, 0, prof, order);
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_EQ(segs[0].blocks, (std::vector<BlockLocalId>{0, 2, 3}));
    EXPECT_EQ(segs[1].blocks, (std::vector<BlockLocalId>{1}));
}

TEST(HotColdSplit, AllHotGivesOneSegment)
{
    Program p = diamond();
    profile::Profile prof(p);
    for (program::GlobalBlockId g = 0; g < 4; ++g)
        prof.addBlock(g, 5);
    auto segs = splitHotCold(p, 0, prof, {0, 1, 2, 3});
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].blocks.size(), 4u);
}

TEST(HotColdSplit, ThresholdIsRespected)
{
    Program p = diamond();
    profile::Profile prof(p);
    prof.addBlock(0, 100);
    prof.addBlock(1, 5);
    auto segs = splitHotCold(p, 0, prof, {0, 1, 2, 3}, 50);
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_EQ(segs[0].blocks, (std::vector<BlockLocalId>{0}));
}

TEST(SegmentGraph, CallAndSeveredFlowEdges)
{
    // Two procs; caller's blocks split into two segments; callee one.
    Program p("g");
    {
        ProcedureBuilder b("caller");
        auto c0 = b.addBlock(1, Terminator::Call, 1);   // calls callee
        auto c1 = b.addBlock(1, Terminator::Return);
        b.addEdge(c0, c1, EdgeKind::FallThrough);
        p.addProcedure(b.build());
    }
    {
        ProcedureBuilder b("callee");
        auto r = b.addBlock(1, Terminator::Return);
        (void)r;
        p.addProcedure(b.build());
    }
    profile::Profile prof(p);
    prof.addCall(0, 1, 42);  // caller block 0 -> proc 1
    prof.addEdge(0, 1, 17);  // caller 0 -> caller 1 (severed below)

    std::vector<CodeSegment> segs;
    segs.push_back({0, {0}});
    segs.push_back({0, {1}});
    segs.push_back({1, {0}});
    SegmentGraph g = buildSegmentGraph(p, prof, segs);
    EXPECT_EQ(g.num_nodes, 3u);
    std::uint64_t call_w = 0, flow_w = 0;
    for (const auto& [from, to, w] : g.edges) {
        if (from == 0 && to == 2)
            call_w = w;
        if (from == 0 && to == 1)
            flow_w = w;
    }
    EXPECT_EQ(call_w, 42u);
    EXPECT_EQ(flow_w, 17u);
}

TEST(SegmentGraph, IntraSegmentEdgesDropOut)
{
    Program p = diamond();
    profile::Profile prof(p);
    prof.addEdge(0, 1, 9);
    std::vector<CodeSegment> segs;
    segs.push_back({0, {0, 1, 2, 3}});
    SegmentGraph g = buildSegmentGraph(p, prof, segs);
    EXPECT_TRUE(g.edges.empty());
}

} // namespace
} // namespace spikesim::core
