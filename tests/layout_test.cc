/** @file Tests for address assignment and layout-dependent code size. */

#include <gtest/gtest.h>

#include <numeric>

#include "core/layout.hh"
#include "program/builder.hh"

namespace spikesim::core {
namespace {

using program::BlockLocalId;
using program::EdgeKind;
using program::kInstrBytes;
using program::ProcedureBuilder;
using program::Program;
using program::Terminator;

/** p0: A(fall)->B(ret); p1: C(uncond->E), D(ret), E(ret). */
Program
sample()
{
    Program p("s");
    {
        ProcedureBuilder b("p0");
        auto a = b.addBlock(2, Terminator::FallThrough);
        auto r = b.addBlock(3, Terminator::Return);
        b.addEdge(a, r, EdgeKind::FallThrough);
        p.addProcedure(b.build());
    }
    {
        ProcedureBuilder b("p1");
        auto c = b.addBlock(1, Terminator::UncondBranch);
        b.addBlock(2, Terminator::Return); // D
        auto e = b.addBlock(2, Terminator::Return);
        b.addEdge(c, e, EdgeKind::UncondTarget);
        p.addProcedure(b.build());
    }
    EXPECT_EQ(p.validate(), "");
    return p;
}

TEST(Layout, BaselineAssignsSequentialAddresses)
{
    Program p = sample();
    Layout l = baselineLayout(p, 0x1000);
    EXPECT_EQ(l.validate(), "");
    EXPECT_EQ(l.blockAddr(0), 0x1000u);
    EXPECT_EQ(l.blockSize(0), 2u); // fall-through successor adjacent
    EXPECT_EQ(l.blockAddr(1), 0x1000u + 2 * kInstrBytes);
    // p1 starts 16-byte aligned after p0 (5 instrs = 20 bytes -> 0x1020).
    EXPECT_EQ(l.blockAddr(2), 0x1020u);
    EXPECT_EQ(l.paddingBytes(), 12u);
}

TEST(Layout, MaterializesBranchWhenFallThroughMoves)
{
    Program p = sample();
    // Reverse p0's blocks: A's successor B is now before it.
    std::vector<CodeSegment> segs;
    segs.push_back({0, {1, 0}});
    segs.push_back({1, {0, 1, 2}});
    AssignOptions opts;
    Layout l(p, segs, opts);
    EXPECT_EQ(l.validate(), "");
    EXPECT_EQ(l.blockSize(0), 3u); // 2 + materialized branch
    EXPECT_EQ(l.branchesMaterialized(), 1u);
}

TEST(Layout, DeletesUncondBranchWhenTargetBecomesAdjacent)
{
    Program p = sample();
    // Order p1 as C,E,D: C's unconditional target E is now adjacent.
    std::vector<CodeSegment> segs;
    segs.push_back({0, {0, 1}});
    segs.push_back({1, {0, 2, 1}});
    AssignOptions opts;
    Layout l(p, segs, opts);
    EXPECT_EQ(l.validate(), "");
    EXPECT_EQ(l.blockSize(p.globalBlockId(1, 0)), 0u); // 1 - deleted
    EXPECT_EQ(l.branchesDeleted(), 1u);
}

TEST(Layout, CondBranchNeedsExtraWhenNeitherSuccessorAdjacent)
{
    Program p("c");
    ProcedureBuilder b("p");
    auto c = b.addBlock(2, Terminator::CondBranch);
    auto t = b.addBlock(1, Terminator::Return);
    auto f = b.addBlock(1, Terminator::Return);
    auto pad = b.addBlock(1, Terminator::Return);
    b.addCond(c, t, f, 0.5);
    (void)pad;
    p.addProcedure(b.build());
    ASSERT_EQ(p.validate(), "");
    // Order: c, pad, t, f -- neither successor follows c.
    std::vector<CodeSegment> segs;
    segs.push_back({0, {0, 3, 1, 2}});
    Layout l(p, segs, {});
    EXPECT_EQ(l.blockSize(0), 3u);
    EXPECT_EQ(l.branchesMaterialized(), 1u);

    // Order: c, t, ... -- the taken side becomes the fall-through
    // (free branch inversion): no extra instruction.
    std::vector<CodeSegment> segs2;
    segs2.push_back({0, {0, 1, 3, 2}});
    Layout l2(p, segs2, {});
    EXPECT_EQ(l2.blockSize(0), 2u);
    EXPECT_EQ(l2.branchesMaterialized(), 0u);
}

TEST(Layout, TightPackingAllowsCrossSegmentFallThrough)
{
    Program p = sample();
    // Split p0's two blocks into separate segments, adjacent, with
    // 4-byte alignment: the fall-through survives (no materialization).
    std::vector<CodeSegment> segs;
    segs.push_back({0, {0}});
    segs.push_back({0, {1}});
    segs.push_back({1, {0, 2, 1}});
    AssignOptions tight;
    tight.segment_align = 4;
    Layout l(p, segs, tight);
    EXPECT_EQ(l.blockSize(0), 2u);
    EXPECT_EQ(l.branchesMaterialized(), 0u);

    // With 16-byte alignment padding may intervene: branch needed.
    AssignOptions padded;
    padded.segment_align = 16;
    Layout l2(p, segs, padded);
    EXPECT_EQ(l2.blockSize(0), 3u);
    EXPECT_EQ(l2.branchesMaterialized(), 1u);
}

TEST(Layout, ValidateCatchesEverything)
{
    Program p = sample();
    Layout l = baselineLayout(p);
    EXPECT_EQ(l.validate(), "");
    EXPECT_GE(l.textLimit(), l.textBase());
    EXPECT_EQ(l.textBytes(),
              l.textLimit() - l.textBase());
}

TEST(Layout, BranchDisplacementAudit)
{
    Program p = sample();
    Layout l = baselineLayout(p);
    // Tiny program: nothing exceeds 1MB reach.
    EXPECT_EQ(l.branchesBeyondDisplacement(), 0u);
    // With a 4-byte limit nearly every branch is out of reach.
    EXPECT_GT(l.branchesBeyondDisplacement(4), 0u);
}

TEST(Layout, CfaConfinesHotSegmentsToReservedRows)
{
    // Build 8 single-block procs; mark half hot; reserve 64 bytes of a
    // 256-byte "cache".
    Program p("cfa");
    for (int i = 0; i < 8; ++i) {
        ProcedureBuilder b("p" + std::to_string(i));
        b.addBlock(8, Terminator::Return); // 32 bytes each
        p.addProcedure(b.build());
    }
    std::vector<CodeSegment> segs;
    std::vector<bool> hot;
    for (std::uint32_t i = 0; i < 8; ++i) {
        segs.push_back({i, {0}});
        hot.push_back(i % 2 == 0);
    }
    AssignOptions opts;
    opts.text_base = 0;
    opts.cfa_bytes = 64;
    opts.cfa_cache_bytes = 256;
    Layout l(p, segs, opts, hot);
    EXPECT_EQ(l.validate(), "");
    for (std::uint32_t i = 0; i < 8; ++i) {
        std::uint64_t addr = l.blockAddr(p.globalBlockId(i, 0));
        std::uint64_t row_off = addr % 256;
        if (i % 2 == 0)
            EXPECT_LT(row_off, 64u) << "hot segment " << i;
        else
            EXPECT_GE(row_off, 64u) << "cold segment " << i;
    }
}

TEST(Layout, ZeroPaddingWithInstructionAlignment)
{
    Program p = sample();
    AssignOptions opts;
    opts.segment_align = 4;
    Layout l(p, baselineSegments(p), opts);
    EXPECT_EQ(l.paddingBytes(), 0u);
}

} // namespace
} // namespace spikesim::core
